//! Eventually-periodic activation schedules — the adversary's full power
//! over *when* agents run.
//!
//! The paper's arbitrary-delay scenario gives the adversary one knob: a
//! start delay θ that holds agent B at home for the first θ rounds. The
//! delay-fault literature (Chalopin et al., *Rendezvous in Networks in
//! Spite of Delay Faults*) generalizes the knob to per-round faults: in
//! every round the adversary decides, per agent, whether that agent is
//! *activated* (observes and acts) or *frozen* (its cursor — node and
//! entry port — is untouched and it perceives nothing). A [`Schedule`]
//! captures the eventually-periodic fragment of that power: explicit
//! per-round flags for a finite prefix, then a cycle repeated forever.
//! Eventual periodicity is what keeps every downstream question decidable
//! — the exact decider extends its product construction by the cycle
//! position (`rvz_lowerbounds::decide::decide_pair_scheduled`), and the
//! trace-replay engine answers schedule cells against unchanged solo
//! recordings ([`crate::trace::replay_pair_scheduled`]).
//!
//! The frozen semantics is chosen so that an agent's trajectory *as a
//! function of its activation count* is schedule-independent: the k-th
//! activation of a deterministic agent sees exactly the observation it
//! would see in an uninterrupted solo run. That invariant is what lets
//! one [`crate::trace::Trajectory`] recording serve every schedule
//! ([`ActivationIndex`] maps global rounds to activation counts and
//! back), and it makes [`Schedule::start_delay`] literally the legacy
//! scenario: a prefix of `(true, false)` rounds, then both agents forever.
//!
//! Round indices are 1-based throughout, matching the simulator: round 0
//! is the initial placement (before any activation), and
//! [`Schedule::active`]`(r)` answers for rounds `r ≥ 1`.

/// An eventually-periodic activation schedule for a two-agent run: which
/// agents the adversary activates each round. Entry `(a, b)` activates
/// agent A iff `a` and agent B iff `b`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Activation flags for rounds `1..=prefix.len()`.
    pub prefix: Vec<(bool, bool)>,
    /// Flags repeated forever after the prefix; never empty.
    pub cycle: Vec<(bool, bool)>,
}

impl Schedule {
    /// Materialization cap for the constructors that unroll a round count
    /// into explicit prefix entries ([`Schedule::start_delay`],
    /// [`Schedule::crash_after`]). Delays beyond it have no schedule form
    /// — use the compact `PairConfig::delayed` path, which carries θ as a
    /// single integer.
    pub const MAX_MATERIALIZED_PREFIX: u64 = 1 << 22;

    /// A schedule from explicit parts. The cycle must be non-empty (the
    /// prefix may be).
    pub fn new(prefix: Vec<(bool, bool)>, cycle: Vec<(bool, bool)>) -> Self {
        assert!(!cycle.is_empty(), "schedule cycle must be non-empty");
        Schedule { prefix, cycle }
    }

    /// Both agents every round — the simultaneous-start scenario.
    pub fn simultaneous() -> Self {
        Schedule::new(Vec::new(), vec![(true, true)])
    }

    /// The legacy start-delay scenario as a schedule: agent A runs from
    /// round 1, agent B from round `theta + 1`.
    pub fn start_delay(theta: u64) -> Self {
        assert!(
            theta <= Self::MAX_MATERIALIZED_PREFIX,
            "start_delay({theta}) would materialize a {theta}-entry prefix; \
             use PairConfig::delayed for delays past MAX_MATERIALIZED_PREFIX"
        );
        Schedule::new(vec![(true, false); theta as usize], vec![(true, true)])
    }

    /// Agent A every round; agent B only in rounds `r` with
    /// `(r - 1) mod period == phase` — the adversary slows one agent to a
    /// `1/period` duty cycle. `intermittent(1, 0)` is
    /// [`Schedule::simultaneous`].
    pub fn intermittent(period: u64, phase: u64) -> Self {
        assert!(period >= 1, "intermittent period must be at least 1");
        assert!(phase < period, "intermittent phase must be below the period");
        Schedule::new(Vec::new(), (0..period).map(|i| (true, i == phase)).collect())
    }

    /// Both agents for `rounds` rounds, then agent B crashes (is never
    /// activated again) while A keeps running — the crash-fault scenario.
    pub fn crash_after(rounds: u64) -> Self {
        assert!(
            rounds <= Self::MAX_MATERIALIZED_PREFIX,
            "crash_after({rounds}) would materialize a {rounds}-entry prefix"
        );
        Schedule::new(vec![(true, true); rounds as usize], vec![(true, false)])
    }

    /// A seeded adversarial sample: uniformly random flags over a prefix
    /// of length `≤ max_prefix` and a cycle of length `1..=max_cycle`,
    /// deterministic in `seed`. A cycle that activates nobody is patched
    /// to `(true, true)` in its first slot so the sampled run cannot
    /// freeze forever (the all-frozen tail is a legal but trivial
    /// adversary — every pair with distinct starts never meets).
    pub fn adversarial(seed: u64, max_prefix: usize, max_cycle: usize) -> Self {
        assert!(max_cycle >= 1, "cycle needs at least one slot to sample");
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the same deterministic stream the sweep's
            // per-cell seeding uses; no RNG dependency.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let flag = |bits: u64| (bits & 1 != 0, bits & 2 != 0);
        let p = (next() % (max_prefix as u64 + 1)) as usize;
        let c = (1 + next() % max_cycle as u64) as usize;
        let prefix = (0..p).map(|_| flag(next())).collect();
        let mut cycle: Vec<(bool, bool)> = (0..c).map(|_| flag(next())).collect();
        if cycle.iter().all(|&(a, b)| !a && !b) {
            cycle[0] = (true, true);
        }
        Schedule::new(prefix, cycle)
    }

    pub fn prefix_len(&self) -> u64 {
        self.prefix.len() as u64
    }

    pub fn cycle_len(&self) -> u64 {
        self.cycle.len() as u64
    }

    /// Activation flags for round `round ≥ 1`.
    #[inline]
    pub fn active(&self, round: u64) -> (bool, bool) {
        debug_assert!(round >= 1, "round 0 is the initial placement, nobody acts");
        let p = self.prefix.len() as u64;
        if round <= p {
            self.prefix[(round - 1) as usize]
        } else {
            self.cycle[((round - 1 - p) % self.cycle.len() as u64) as usize]
        }
    }

    /// `Some(θ)` when this schedule is exactly the legacy start-delay
    /// scenario (A-only for θ rounds, then both forever) — the special
    /// case the θ-indexed fast paths answer without a schedule walk.
    pub fn as_start_delay(&self) -> Option<u64> {
        (self.cycle == [(true, true)] && self.prefix.iter().all(|&f| f == (true, false)))
            .then_some(self.prefix.len() as u64)
    }

    /// `true` when the two lanes see identical activation flags every
    /// round (simultaneous, lockstep, any global-stall pattern). For such
    /// schedules swapping the agents merely relabels the lanes, so the
    /// rendezvous verdict for `(a, b)` equals the verdict for `(b, a)` —
    /// the swap half of the sweep's start-pair orbit quotient is sound
    /// exactly on this class.
    pub fn lane_symmetric(&self) -> bool {
        self.prefix.iter().chain(&self.cycle).all(|&(a, b)| a == b)
    }

    /// Activation arithmetic for agent A.
    pub fn index_a(&self) -> ActivationIndex {
        ActivationIndex::new(self, false)
    }

    /// Activation arithmetic for agent B.
    pub fn index_b(&self) -> ActivationIndex {
        ActivationIndex::new(self, true)
    }
}

/// An eventually-periodic activation schedule over `k` lanes — the
/// ensemble generalization of the two-agent [`Schedule`]. Each round is
/// a row of `k` flags; lane `i` of the row says whether agent `i` is
/// activated that round. The frozen semantics is unchanged: a lane whose
/// flag is off keeps its cursor (node *and* entry port) and perceives
/// nothing, so each lane's trajectory as a function of its activation
/// count is schedule-independent — one solo recording per agent serves
/// every ensemble schedule.
///
/// A two-lane `EnsembleSchedule` is interconvertible with [`Schedule`]
/// ([`EnsembleSchedule::from_pair`] / [`EnsembleSchedule::pair`]) and
/// produces identical activation flags round for round.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnsembleSchedule {
    /// Lane count `k ≥ 1`; every row below has exactly `k` flags.
    lanes: usize,
    /// Rows for rounds `1..=prefix.len()`.
    pub prefix: Vec<Vec<bool>>,
    /// Rows repeated forever after the prefix; never empty.
    pub cycle: Vec<Vec<bool>>,
}

impl EnsembleSchedule {
    /// A schedule from explicit rows. The cycle must be non-empty and
    /// every row must have exactly `lanes` flags.
    pub fn new(lanes: usize, prefix: Vec<Vec<bool>>, cycle: Vec<Vec<bool>>) -> Self {
        assert!(lanes >= 1, "an ensemble schedule needs at least one lane");
        assert!(!cycle.is_empty(), "schedule cycle must be non-empty");
        for row in prefix.iter().chain(&cycle) {
            assert_eq!(row.len(), lanes, "every schedule row must cover all {lanes} lanes");
        }
        EnsembleSchedule { lanes, prefix, cycle }
    }

    /// All `k` agents every round — the simultaneous-start scenario.
    pub fn simultaneous(lanes: usize) -> Self {
        EnsembleSchedule::new(lanes, Vec::new(), vec![vec![true; lanes]])
    }

    /// Per-lane start delays: lane `i` is frozen through round
    /// `delays[i]` and active from round `delays[i] + 1` forever. The
    /// two-lane form with `delays = [0, θ]` is exactly
    /// [`Schedule::start_delay`]`(θ)`.
    pub fn start_delays(delays: &[u64]) -> Self {
        let lanes = delays.len();
        let max = delays.iter().copied().max().unwrap_or(0);
        assert!(
            max <= Schedule::MAX_MATERIALIZED_PREFIX,
            "start_delays would materialize a {max}-entry prefix"
        );
        let prefix = (1..=max).map(|r| delays.iter().map(|&d| r > d).collect()).collect();
        EnsembleSchedule::new(lanes, prefix, vec![vec![true; lanes]])
    }

    /// All lanes for `rounds` rounds, then the last lane crashes (is
    /// never activated again) while the rest keep running — the
    /// ensemble form of [`Schedule::crash_after`].
    pub fn crash_last_after(lanes: usize, rounds: u64) -> Self {
        assert!(
            rounds <= Schedule::MAX_MATERIALIZED_PREFIX,
            "crash_last_after({rounds}) would materialize a {rounds}-entry prefix"
        );
        let mut survivor_row = vec![true; lanes];
        survivor_row[lanes - 1] = false;
        EnsembleSchedule::new(lanes, vec![vec![true; lanes]; rounds as usize], vec![survivor_row])
    }

    /// Lanes `0..k-1` every round; the last lane only in rounds `r` with
    /// `(r - 1) mod period == phase` — [`Schedule::intermittent`] over
    /// `k` lanes.
    pub fn intermittent_last(lanes: usize, period: u64, phase: u64) -> Self {
        assert!(period >= 1, "intermittent period must be at least 1");
        assert!(phase < period, "intermittent phase must be below the period");
        let cycle = (0..period)
            .map(|i| {
                let mut row = vec![true; lanes];
                row[lanes - 1] = i == phase;
                row
            })
            .collect();
        EnsembleSchedule::new(lanes, Vec::new(), cycle)
    }

    /// The two-lane view of a pair [`Schedule`] — flag-for-flag
    /// identical, so every pair engine and its ensemble generalization
    /// see the same adversary.
    pub fn from_pair(s: &Schedule) -> Self {
        let row = |&(a, b): &(bool, bool)| vec![a, b];
        EnsembleSchedule::new(
            2,
            s.prefix.iter().map(row).collect(),
            s.cycle.iter().map(row).collect(),
        )
    }

    /// The pair [`Schedule`] this two-lane ensemble schedule came from;
    /// `None` when `lanes != 2`.
    pub fn pair(&self) -> Option<Schedule> {
        (self.lanes == 2).then(|| {
            let pair = |row: &Vec<bool>| (row[0], row[1]);
            Schedule::new(
                self.prefix.iter().map(pair).collect(),
                self.cycle.iter().map(pair).collect(),
            )
        })
    }

    pub fn lanes(&self) -> usize {
        self.lanes
    }

    pub fn prefix_len(&self) -> u64 {
        self.prefix.len() as u64
    }

    pub fn cycle_len(&self) -> u64 {
        self.cycle.len() as u64
    }

    /// Activation flags for round `round ≥ 1`, one per lane.
    #[inline]
    pub fn active(&self, round: u64) -> &[bool] {
        debug_assert!(round >= 1, "round 0 is the initial placement, nobody acts");
        let p = self.prefix.len() as u64;
        if round <= p {
            &self.prefix[(round - 1) as usize]
        } else {
            &self.cycle[((round - 1 - p) % self.cycle.len() as u64) as usize]
        }
    }

    /// `true` when every lane sees identical flags every round — the
    /// class on which permuting the agents merely relabels lanes, so the
    /// sweep's orbit quotient may permute start tuples soundly.
    pub fn lane_symmetric(&self) -> bool {
        self.prefix.iter().chain(&self.cycle).all(|row| row.iter().all(|&f| f == row[0]))
    }

    /// The per-lane start delays, when this schedule is a pure start-delay
    /// scenario: the cycle is one all-active row and each lane's prefix is
    /// a (possibly empty) run of frozen rounds followed only by active
    /// ones. `None` for every other shape. The decider uses this to route
    /// start-delay ensembles to the solo-lasso closed form instead of the
    /// product walk.
    pub fn as_start_delays(&self) -> Option<Vec<u64>> {
        if self.cycle.len() != 1 || self.cycle[0].iter().any(|&f| !f) {
            return None;
        }
        let mut delays = vec![0u64; self.lanes];
        for (lane, delay) in delays.iter_mut().enumerate() {
            let mut started = false;
            for (r, row) in self.prefix.iter().enumerate() {
                if row[lane] {
                    started = true;
                } else if started {
                    return None; // frozen again after starting: not a delay
                } else {
                    *delay = r as u64 + 1;
                }
            }
        }
        Some(delays)
    }

    /// Activation arithmetic for lane `lane`.
    pub fn index(&self, lane: usize) -> ActivationIndex {
        assert!(lane < self.lanes, "lane {lane} out of range for {} lanes", self.lanes);
        ActivationIndex::from_flags(
            self.prefix.iter().map(|row| row[lane]),
            self.cycle.iter().map(|row| row[lane]),
        )
    }
}

/// One agent's activation arithmetic under a [`Schedule`]: cumulative
/// activation counts over the prefix and one cycle, answering both
/// directions of the round ↔ activation-count correspondence in
/// O(log(prefix + cycle)). This is the "schedule-aware cursor
/// advancement" the trace-replay merge runs on: a solo
/// [`crate::trace::Trajectory`] is indexed by activation count, and the
/// merge's global clock is rounds.
#[derive(Debug, Clone)]
pub struct ActivationIndex {
    /// `prefix_cum[i]` = activations in rounds `1..=i`; length `p + 1`.
    prefix_cum: Vec<u64>,
    /// `cycle_cum[i]` = activations in the first `i` cycle slots; length
    /// `c + 1`.
    cycle_cum: Vec<u64>,
}

impl ActivationIndex {
    fn new(s: &Schedule, second: bool) -> Self {
        let pick = |f: &(bool, bool)| if second { f.1 } else { f.0 };
        Self::from_flags(s.prefix.iter().map(pick), s.cycle.iter().map(pick))
    }

    /// Activation arithmetic from one lane's raw flag streams — the
    /// lane-agnostic constructor [`EnsembleSchedule::index`] shares with
    /// the two-agent [`Schedule::index_a`]/[`Schedule::index_b`].
    fn from_flags(prefix: impl Iterator<Item = bool>, cycle: impl Iterator<Item = bool>) -> Self {
        fn cum(flags: impl Iterator<Item = bool>) -> Vec<u64> {
            let mut v = vec![0u64];
            for f in flags {
                let last = *v.last().expect("seeded");
                v.push(last + u64::from(f));
            }
            v
        }
        ActivationIndex { prefix_cum: cum(prefix), cycle_cum: cum(cycle) }
    }

    /// Activations per full cycle.
    pub fn per_cycle(&self) -> u64 {
        *self.cycle_cum.last().expect("cycle_cum seeded")
    }

    /// Number of activations in rounds `1..=round` (0 at round 0).
    pub fn acts_at(&self, round: u64) -> u64 {
        let p = (self.prefix_cum.len() - 1) as u64;
        if round <= p {
            return self.prefix_cum[round as usize];
        }
        let c = (self.cycle_cum.len() - 1) as u64;
        let past = round - p;
        self.prefix_cum[p as usize]
            .saturating_add((past / c).saturating_mul(self.per_cycle()))
            .saturating_add(self.cycle_cum[(past % c) as usize])
    }

    /// Global round of the `k`-th activation (`k ≥ 1`), or `None` when
    /// the agent is activated fewer than `k` times ever (it crashed, or
    /// the cycle never activates it).
    pub fn round_of_act(&self, k: u64) -> Option<u64> {
        debug_assert!(k >= 1, "activation counts are 1-based");
        let p = (self.prefix_cum.len() - 1) as u64;
        let in_prefix = self.prefix_cum[p as usize];
        if k <= in_prefix {
            return Some(self.prefix_cum.partition_point(|&v| v < k) as u64);
        }
        let per = self.per_cycle();
        if per == 0 {
            return None;
        }
        let c = (self.cycle_cum.len() - 1) as u64;
        let rem = k - in_prefix; // ≥ 1
        let full = (rem - 1) / per;
        let within = rem - full * per; // 1..=per
        let slot = self.cycle_cum.partition_point(|&v| v < within) as u64;
        Some(p.saturating_add(full.saturating_mul(c)).saturating_add(slot))
    }

    /// Last global round at which the activation count is still below
    /// `k + 1` — i.e. through which an agent frozen after its `k`-th
    /// activation provably keeps its cursor. `u64::MAX` when activation
    /// `k + 1` never happens.
    pub fn frozen_through(&self, k: u64) -> u64 {
        match self.round_of_act(k.saturating_add(1)) {
            Some(r) => r - 1,
            None => u64::MAX,
        }
    }

    /// `Some(θ)` when this lane is a pure start delay — frozen through
    /// round `θ`, active every round after — so `acts_at(r) = r − θ`
    /// (saturating) and the merge can run on constant-shift arithmetic
    /// instead of the cycle div/mod and binary searches. This covers the
    /// simultaneous and start-delay lanes of every ensemble schedule (the
    /// bulk of the sweep grids); crashed and intermittent lanes return
    /// `None` and keep the general index.
    pub(crate) fn as_pure_shift(&self) -> Option<u64> {
        if self.cycle_cum.as_slice() != [0, 1] {
            return None;
        }
        let p = self.prefix_cum.len() as u64 - 1;
        let shift = p - self.prefix_cum[p as usize];
        for (i, &v) in self.prefix_cum.iter().enumerate() {
            if v != (i as u64).saturating_sub(shift) {
                return None;
            }
        }
        Some(shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_symmetry_matches_the_flag_pattern() {
        assert!(Schedule::simultaneous().lane_symmetric());
        assert!(Schedule::new(Vec::new(), vec![(true, true), (false, false)]).lane_symmetric());
        assert!(!Schedule::start_delay(1).lane_symmetric());
        assert!(!Schedule::intermittent(2, 0).lane_symmetric());
        assert!(!Schedule::crash_after(3).lane_symmetric());
        // θ = 0 start delay has an empty prefix and a both-on cycle.
        assert!(Schedule::start_delay(0).lane_symmetric());
    }

    /// Brute-force activation count straight off `Schedule::active`.
    fn brute_acts(s: &Schedule, second: bool, round: u64) -> u64 {
        (1..=round)
            .filter(|&r| {
                let (a, b) = s.active(r);
                if second {
                    b
                } else {
                    a
                }
            })
            .count() as u64
    }

    #[test]
    fn constructors_have_the_advertised_shapes() {
        assert_eq!(Schedule::simultaneous().as_start_delay(), Some(0));
        assert_eq!(Schedule::start_delay(0), Schedule::simultaneous());
        assert_eq!(Schedule::start_delay(3).as_start_delay(), Some(3));
        assert_eq!(Schedule::intermittent(1, 0), Schedule::simultaneous());
        assert_eq!(Schedule::intermittent(2, 1).as_start_delay(), None);
        assert_eq!(Schedule::crash_after(4).as_start_delay(), None);
        // intermittent activates B exactly once per period, at the phase.
        let s = Schedule::intermittent(3, 1);
        for r in 1..=12u64 {
            assert_eq!(s.active(r), (true, (r - 1) % 3 == 1), "round {r}");
        }
        // crash_after freezes B from round rounds+1 on.
        let s = Schedule::crash_after(2);
        assert_eq!(s.active(2), (true, true));
        assert_eq!(s.active(3), (true, false));
        assert_eq!(s.active(1_000_000), (true, false));
    }

    #[test]
    fn active_is_periodic_past_the_prefix() {
        let s = Schedule::new(
            vec![(false, true), (true, false)],
            vec![(true, true), (false, false), (true, false)],
        );
        for r in 3..=40u64 {
            assert_eq!(s.active(r), s.active(r + 3), "round {r}");
        }
        assert_eq!(s.active(1), (false, true));
        assert_eq!(s.active(2), (true, false));
    }

    #[test]
    fn activation_index_matches_brute_force_counting() {
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(5),
            Schedule::intermittent(3, 2),
            Schedule::crash_after(4),
            Schedule::new(vec![(false, false); 3], vec![(true, false), (false, true)]),
            Schedule::adversarial(0xFEED, 6, 5),
        ];
        for s in &schedules {
            for (second, idx) in [(false, s.index_a()), (true, s.index_b())] {
                for round in 0..=50u64 {
                    assert_eq!(
                        idx.acts_at(round),
                        brute_acts(s, second, round),
                        "{s:?} second={second} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_of_act_inverts_acts_at() {
        let schedules = [
            Schedule::start_delay(4),
            Schedule::intermittent(4, 1),
            Schedule::crash_after(3),
            Schedule::adversarial(7, 5, 4),
        ];
        for s in &schedules {
            for idx in [s.index_a(), s.index_b()] {
                for k in 1..=30u64 {
                    match idx.round_of_act(k) {
                        Some(r) => {
                            assert_eq!(idx.acts_at(r), k, "{s:?} k={k}: round {r}");
                            assert_eq!(idx.acts_at(r - 1), k - 1, "{s:?} k={k}: activation round");
                        }
                        None => {
                            // Bounded activations: the count plateaus.
                            assert!(idx.acts_at(1 << 20) < k, "{s:?} k={k}");
                        }
                    }
                }
                // frozen_through is the round before the next activation.
                for k in 0..=10u64 {
                    let end = idx.frozen_through(k);
                    if end != u64::MAX {
                        assert_eq!(idx.acts_at(end), k);
                        assert_eq!(idx.acts_at(end + 1), k + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn crashed_agent_has_finitely_many_activations() {
        let idx = Schedule::crash_after(3).index_b();
        assert_eq!(idx.round_of_act(3), Some(3));
        assert_eq!(idx.round_of_act(4), None);
        assert_eq!(idx.frozen_through(3), u64::MAX);
        assert_eq!(idx.acts_at(1 << 40), 3);
    }

    #[test]
    fn adversarial_sampler_is_deterministic_and_live() {
        let a = Schedule::adversarial(42, 8, 6);
        let b = Schedule::adversarial(42, 8, 6);
        assert_eq!(a, b, "same seed, same schedule");
        for seed in 0..64u64 {
            let s = Schedule::adversarial(seed, 8, 6);
            assert!(!s.cycle.is_empty());
            assert!(
                s.cycle.iter().any(|&(a, b)| a || b),
                "sampled cycle must activate someone (seed {seed})"
            );
            assert!(s.prefix.len() <= 8 && s.cycle.len() <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "cycle must be non-empty")]
    fn empty_cycles_are_rejected() {
        let _ = Schedule::new(vec![(true, true)], Vec::new());
    }

    #[test]
    fn ensemble_round_trip_matches_the_pair_schedule_flag_for_flag() {
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(4),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(2),
            Schedule::adversarial(0xABCD, 5, 4),
        ];
        for s in &schedules {
            let e = EnsembleSchedule::from_pair(s);
            assert_eq!(e.lanes(), 2);
            assert_eq!(e.pair().as_ref(), Some(s), "round trip");
            assert_eq!(e.lane_symmetric(), s.lane_symmetric());
            for r in 1..=40u64 {
                let (a, b) = s.active(r);
                assert_eq!(e.active(r), &[a, b], "{s:?} round {r}");
            }
            for (lane, idx) in [(0, s.index_a()), (1, s.index_b())] {
                let ei = e.index(lane);
                for r in 0..=40u64 {
                    assert_eq!(ei.acts_at(r), idx.acts_at(r), "{s:?} lane {lane} round {r}");
                }
            }
        }
    }

    #[test]
    fn ensemble_constructors_generalize_the_pair_shapes() {
        // start_delays([0, θ]) is the legacy start-delay scenario.
        for theta in [0u64, 1, 5] {
            let e = EnsembleSchedule::start_delays(&[0, theta]);
            assert_eq!(e.pair(), Some(Schedule::start_delay(theta)), "θ={theta}");
        }
        // crash_last_after over two lanes is crash_after.
        assert_eq!(EnsembleSchedule::crash_last_after(2, 3).pair(), Some(Schedule::crash_after(3)));
        // intermittent_last over two lanes is intermittent.
        assert_eq!(
            EnsembleSchedule::intermittent_last(2, 3, 1).pair(),
            Some(Schedule::intermittent(3, 1))
        );
        // Three lanes with staggered delays: lane i first acts at round
        // delays[i] + 1.
        let e = EnsembleSchedule::start_delays(&[0, 2, 5]);
        for (lane, delay) in [(0usize, 0u64), (1, 2), (2, 5)] {
            let idx = e.index(lane);
            assert_eq!(idx.acts_at(delay), 0, "lane {lane} frozen through its delay");
            assert_eq!(idx.round_of_act(1), Some(delay + 1), "lane {lane} first activation");
        }
        // Crash: the last lane plateaus, the others run forever.
        let e = EnsembleSchedule::crash_last_after(3, 4);
        assert_eq!(e.index(2).acts_at(1 << 30), 4);
        assert_eq!(e.index(0).acts_at(100), 100);
        assert!(!e.lane_symmetric());
        assert!(EnsembleSchedule::simultaneous(3).lane_symmetric());
    }

    #[test]
    #[should_panic(expected = "must cover all 3 lanes")]
    fn ragged_ensemble_rows_are_rejected() {
        let _ = EnsembleSchedule::new(3, Vec::new(), vec![vec![true, true]]);
    }

    #[test]
    fn start_delay_shapes_round_trip_through_as_start_delays() {
        for delays in [vec![0u64, 0], vec![0, 3], vec![2, 0, 5], vec![1, 1, 1, 1]] {
            let e = EnsembleSchedule::start_delays(&delays);
            assert_eq!(e.as_start_delays(), Some(delays.clone()), "{delays:?}");
        }
        assert_eq!(EnsembleSchedule::simultaneous(3).as_start_delays(), Some(vec![0, 0, 0]));
        // Crashes freeze a lane *after* it started; intermittence has a
        // non-trivial cycle — neither is a start-delay scenario.
        assert_eq!(EnsembleSchedule::crash_last_after(3, 2).as_start_delays(), None);
        assert_eq!(EnsembleSchedule::intermittent_last(3, 2, 0).as_start_delays(), None);
        // A lane frozen again after acting is not a delay either.
        let e = EnsembleSchedule::new(
            2,
            vec![vec![true, true], vec![true, false]],
            vec![vec![true, true]],
        );
        assert_eq!(e.as_start_delays(), None);
    }
}
