//! Single- and two-agent synchronous execution.

use crate::schedule::Schedule;
use rvz_agent::model::{Action, Agent, Obs};
use rvz_trees::{NodeId, Port, Tree};

/// An agent's physical situation: its node and the port by which it entered
/// (``None`` after a null move or before the first move).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    pub node: NodeId,
    pub entry: Option<Port>,
}

impl Cursor {
    pub fn new(node: NodeId) -> Self {
        Cursor { node, entry: None }
    }

    /// The observation the agent receives this round.
    pub fn obs(&self, t: &Tree) -> Obs {
        Obs { entry: self.entry, degree: t.degree(self.node) }
    }

    /// Applies an action; returns `true` if the agent moved.
    pub fn apply(&mut self, t: &Tree, action: Action) -> bool {
        match action.port(t.degree(self.node)) {
            None => {
                self.entry = None;
                false
            }
            Some(p) => {
                let next = t.neighbor(self.node, p);
                self.entry = Some(t.entry_port(self.node, p));
                self.node = next;
                true
            }
        }
    }
}

/// Result of a bounded single-agent run.
#[derive(Debug, Clone)]
pub struct SingleRun {
    pub cursor: Cursor,
    pub rounds: u64,
    /// Node occupied after every round (index 0 = start, before any action),
    /// when recording was requested.
    pub trace: Option<Vec<NodeId>>,
}

/// Runs one agent for exactly `rounds` rounds (or until it would act from an
/// isolated node, which cannot happen on trees with `n ≥ 2`).
///
/// Generic over the agent, so concrete callers get a monomorphized loop
/// (static dispatch); `&mut dyn Agent` callers keep working unchanged.
pub fn run_single<A: Agent + ?Sized>(
    t: &Tree,
    start: NodeId,
    agent: &mut A,
    rounds: u64,
    record: bool,
) -> SingleRun {
    let mut cur = Cursor::new(start);
    let mut trace = record.then(|| {
        let mut v = Vec::with_capacity(rounds as usize + 1);
        v.push(start);
        v
    });
    for _ in 0..rounds {
        let action = agent.act(cur.obs(t));
        cur.apply(t, action);
        if let Some(tr) = trace.as_mut() {
            tr.push(cur.node);
        }
    }
    SingleRun { cursor: cur, rounds, trace }
}

/// Outcome of a two-agent run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The agents occupied the same node at the end of `round`
    /// (`round == 0` means the initial positions coincided).
    Met { round: u64, node: NodeId },
    /// No meeting within the round budget.
    Timeout { rounds: u64 },
}

impl Outcome {
    pub fn met(&self) -> bool {
        matches!(self, Outcome::Met { .. })
    }

    /// The meeting round, if any.
    pub fn round(&self) -> Option<u64> {
        match self {
            Outcome::Met { round, .. } => Some(*round),
            Outcome::Timeout { .. } => None,
        }
    }
}

/// Configuration of a two-agent run.
#[derive(Debug, Clone, Copy)]
pub struct PairConfig {
    /// Agent B starts `delay` rounds after agent A (the adversary's θ; 0 =
    /// simultaneous start). While unstarted, B sits at its initial node and
    /// can be met there.
    pub delay: u64,
    /// Round budget.
    pub max_rounds: u64,
    /// Record per-round node traces (memory-heavy; tests only).
    pub record_traces: bool,
}

impl PairConfig {
    pub fn simultaneous(max_rounds: u64) -> Self {
        PairConfig { delay: 0, max_rounds, record_traces: false }
    }

    pub fn delayed(delay: u64, max_rounds: u64) -> Self {
        PairConfig { delay, max_rounds, record_traces: false }
    }
}

/// Result of a two-agent run.
#[derive(Debug, Clone)]
pub struct PairRun {
    pub outcome: Outcome,
    /// Number of rounds in which the agents swapped endpoints of one edge
    /// (crossed inside it). Key instrumentation for the parity arguments of
    /// §4.2 (crossing ⇒ no meeting that round).
    pub crossings: u64,
    pub final_a: Cursor,
    pub final_b: Cursor,
    pub trace_a: Option<Vec<NodeId>>,
    pub trace_b: Option<Vec<NodeId>>,
}

/// Runs two agents with the given start delay until they meet or the budget
/// runs out. Both agents receive observations and move simultaneously within
/// a round; meeting is co-location at a round boundary.
///
/// Dyn-dispatch wrapper over [`run_pair_fsa`], kept for heterogeneous
/// callers; hot loops with concrete agent types should call
/// [`run_pair_fsa`] directly to get a monomorphized round loop.
pub fn run_pair(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut dyn Agent,
    agent_b: &mut dyn Agent,
    cfg: PairConfig,
) -> PairRun {
    run_pair_fsa(t, start_a, start_b, agent_a, agent_b, cfg)
}

/// The monomorphic two-agent fast path: generic over the agent types, so
/// every concrete instantiation compiles to a round loop with static
/// dispatch and inlined `act`/`apply` calls — no per-round vtable hops.
/// [`run_pair`] is the dyn-compatible wrapper over this.
pub fn run_pair_fsa<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    cfg: PairConfig,
) -> PairRun {
    // The start-delay activation pattern as a closure: A from round 1, B
    // from round delay+1. Inlines into the shared core loop, compiling to
    // the same per-round comparison the pre-schedule loop ran.
    run_pair_core(t, start_a, start_b, agent_a, agent_b, cfg.max_rounds, cfg.record_traces, |r| {
        (true, r > cfg.delay)
    })
}

/// Runs two agents under an arbitrary activation [`Schedule`] until they
/// meet or the budget runs out. Dyn-dispatch wrapper over
/// [`run_pair_scheduled_fsa`], mirroring [`run_pair`] over
/// [`run_pair_fsa`].
///
/// Frozen semantics: an agent whose flag is off for a round neither
/// observes nor acts — its cursor (node *and* entry port) is untouched,
/// so its k-th activation sees exactly what it would see in an
/// uninterrupted run. [`Schedule::start_delay`]`(θ)` therefore reproduces
/// [`run_pair`] with `cfg.delay = θ` bit for bit, and a meeting can
/// happen in a round in which neither agent was activated only at round 0
/// (identical starts).
pub fn run_pair_scheduled(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut dyn Agent,
    agent_b: &mut dyn Agent,
    schedule: &Schedule,
    max_rounds: u64,
    record_traces: bool,
) -> PairRun {
    run_pair_scheduled_fsa(
        t,
        start_a,
        start_b,
        agent_a,
        agent_b,
        schedule,
        max_rounds,
        record_traces,
    )
}

/// The monomorphic scheduled fast path; see [`run_pair_scheduled`] for
/// the activation semantics.
#[allow(clippy::too_many_arguments)]
pub fn run_pair_scheduled_fsa<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    schedule: &Schedule,
    max_rounds: u64,
    record_traces: bool,
) -> PairRun {
    run_pair_core(t, start_a, start_b, agent_a, agent_b, max_rounds, record_traces, |r| {
        schedule.active(r)
    })
}

/// The shared two-agent round loop: `active(round)` says which agents are
/// activated in each round (1-based). Every entry point above is a thin
/// activation-pattern wrapper over this.
#[allow(clippy::too_many_arguments)]
fn run_pair_core<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    max_rounds: u64,
    record_traces: bool,
    mut active: impl FnMut(u64) -> (bool, bool),
) -> PairRun {
    let mut a = Cursor::new(start_a);
    let mut b = Cursor::new(start_b);
    let mut crossings = 0u64;
    let mut trace_a = record_traces.then(|| vec![a.node]);
    let mut trace_b = record_traces.then(|| vec![b.node]);

    let finish = |outcome: Outcome,
                  a: Cursor,
                  b: Cursor,
                  crossings: u64,
                  trace_a: Option<Vec<NodeId>>,
                  trace_b: Option<Vec<NodeId>>| PairRun {
        outcome,
        crossings,
        final_a: a,
        final_b: b,
        trace_a,
        trace_b,
    };

    if a.node == b.node {
        return finish(Outcome::Met { round: 0, node: a.node }, a, b, 0, trace_a, trace_b);
    }

    for round in 1..=max_rounds {
        if round & 0xFFF == 0 {
            crate::cancel::checkpoint();
        }
        let prev_a = a.node;
        let prev_b = b.node;
        let (on_a, on_b) = active(round);
        if on_a {
            let act_a = agent_a.act(a.obs(t));
            a.apply(t, act_a);
        }
        if on_b {
            let act_b = agent_b.act(b.obs(t));
            b.apply(t, act_b);
        }
        if let Some(tr) = trace_a.as_mut() {
            tr.push(a.node);
        }
        if let Some(tr) = trace_b.as_mut() {
            tr.push(b.node);
        }
        if a.node == prev_b && b.node == prev_a && a.node != b.node {
            crossings += 1;
        }
        if a.node == b.node {
            return finish(Outcome::Met { round, node: a.node }, a, b, crossings, trace_a, trace_b);
        }
    }
    finish(Outcome::Timeout { rounds: max_rounds }, a, b, crossings, trace_a, trace_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_agent::model::bw_exit;
    use rvz_trees::generators::{colored_line, line, star};

    /// Plain basic-walk agent (procedural).
    #[derive(Clone, Default)]
    struct BasicWalker;

    impl Agent for BasicWalker {
        fn act(&mut self, obs: Obs) -> Action {
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    /// Never moves.
    #[derive(Clone, Default)]
    struct Sitter;

    impl Agent for Sitter {
        fn act(&mut self, _obs: Obs) -> Action {
            Action::Stay
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    #[test]
    fn basic_walk_period_is_2n_minus_2() {
        // §2.2: a basic walk of length 2(n−1) returns to its start.
        for n in [2usize, 3, 5, 10, 33] {
            let t = line(n);
            let run = run_single(&t, 0, &mut BasicWalker, 2 * (n as u64 - 1), false);
            assert_eq!(run.cursor.node, 0, "n={n}");
        }
        let s = star(7);
        let run = run_single(&s, 1, &mut BasicWalker, 2 * 7, false);
        assert_eq!(run.cursor.node, 1);
    }

    #[test]
    fn basic_walk_covers_all_nodes() {
        let t = crate::runner::tests_support::random_tree_20();
        let n = t.num_nodes();
        let run = run_single(&t, 0, &mut BasicWalker, 2 * (n as u64 - 1), true);
        let mut seen = vec![false; n];
        for &v in run.trace.as_ref().unwrap() {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "Euler tour must cover the tree");
    }

    #[test]
    fn walker_meets_sitter() {
        let t = line(9);
        let run = run_pair(&t, 0, 5, &mut BasicWalker, &mut Sitter, PairConfig::simultaneous(100));
        assert_eq!(run.outcome, Outcome::Met { round: 5, node: 5 });
    }

    #[test]
    fn delayed_agent_is_met_at_home() {
        let t = line(9);
        // B delayed past the horizon: A's walk reaches B's home anyway.
        let run =
            run_pair(&t, 0, 6, &mut BasicWalker, &mut BasicWalker, PairConfig::delayed(1_000, 100));
        assert_eq!(run.outcome, Outcome::Met { round: 6, node: 6 });
    }

    #[test]
    fn crossing_is_not_meeting() {
        // Two walkers launched toward each other at odd distance cross
        // inside an edge and never co-locate on a cycle-free shuttle.
        let t = colored_line(2, 0); // single edge
        let run =
            run_pair(&t, 0, 1, &mut BasicWalker, &mut BasicWalker, PairConfig::simultaneous(10));
        assert!(!run.outcome.met());
        assert!(run.crossings > 0);
    }

    #[test]
    fn same_start_meets_at_round_zero() {
        let t = line(4);
        let run =
            run_pair(&t, 2, 2, &mut BasicWalker, &mut BasicWalker, PairConfig::simultaneous(10));
        assert_eq!(run.outcome, Outcome::Met { round: 0, node: 2 });
    }

    #[test]
    fn delayed_agent_first_acts_at_round_delay_plus_one() {
        // The delayed agent must sit still through rounds 1..=delay and
        // take its first action in round delay+1.
        struct CountingWalker {
            activations: u64,
        }
        impl Agent for CountingWalker {
            fn act(&mut self, obs: Obs) -> Action {
                self.activations += 1;
                Action::Move(bw_exit(obs.entry, obs.degree))
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        let t = line(30);
        let mut a = Sitter;
        let mut b = CountingWalker { activations: 0 };
        let run = run_pair(
            &t,
            0,
            20,
            &mut a,
            &mut b,
            PairConfig { delay: 7, max_rounds: 12, record_traces: true },
        );
        assert!(!run.outcome.met());
        // 12 rounds total, active in rounds 8..=12.
        assert_eq!(b.activations, 5);
        let tb = run.trace_b.unwrap();
        assert!(tb[..8].iter().all(|&v| v == 20), "parked through the delay");
        assert_ne!(tb[8], 20, "first move in round 8");
    }

    #[test]
    fn start_delay_schedule_reproduces_the_legacy_delay_path() {
        let t = line(11);
        for delay in [0u64, 1, 3, 9] {
            for (a, b) in [(0u32, 7u32), (2, 10)] {
                let cfg = PairConfig { delay, max_rounds: 80, record_traces: true };
                let mut x = BasicWalker;
                let mut y = BasicWalker;
                let legacy = run_pair(&t, a, b, &mut x, &mut y, cfg);
                let sched = Schedule::start_delay(delay);
                let mut x = BasicWalker;
                let mut y = BasicWalker;
                let scheduled = run_pair_scheduled(&t, a, b, &mut x, &mut y, &sched, 80, true);
                assert_eq!(scheduled.outcome, legacy.outcome, "θ={delay} ({a},{b})");
                assert_eq!(scheduled.crossings, legacy.crossings);
                assert_eq!(scheduled.final_a, legacy.final_a);
                assert_eq!(scheduled.final_b, legacy.final_b);
                assert_eq!(scheduled.trace_a, legacy.trace_a);
                assert_eq!(scheduled.trace_b, legacy.trace_b);
            }
        }
    }

    #[test]
    fn frozen_agent_keeps_cursor_and_perceives_nothing() {
        // Under intermittent(2, 1) agent B acts only in even rounds; its
        // activation count after r rounds is ⌊r/2⌋, and each activation
        // must see the observation of an uninterrupted run (the frozen
        // rounds are invisible to it).
        struct Probe {
            seen: Vec<Obs>,
        }
        impl Agent for Probe {
            fn act(&mut self, obs: Obs) -> Action {
                self.seen.push(obs);
                Action::Move(bw_exit(obs.entry, obs.degree))
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        let t = line(16);
        let sched = Schedule::intermittent(2, 1);
        let mut a = Sitter;
        let mut b = Probe { seen: Vec::new() };
        let run = run_pair_scheduled(&t, 0, 15, &mut a, &mut b, &sched, 9, true);
        assert!(!run.outcome.met());
        assert_eq!(b.seen.len(), 4, "active in rounds 2, 4, 6, 8");
        // The frozen agent's observations are the uninterrupted walk's.
        let mut solo = Probe { seen: Vec::new() };
        run_single(&t, 15, &mut solo, 4, false);
        assert_eq!(b.seen, solo.seen[..4]);
        // Its trace holds each position for two rounds.
        let tb = run.trace_b.unwrap();
        assert_eq!(tb, vec![15, 15, 14, 14, 13, 13, 12, 12, 11, 11]);
        // Final cursor: last activation (round 8) moved it, so the entry
        // port is the one that activation set, despite round 9 freezing.
        assert_eq!(run.final_b.node, 11);
        assert!(run.final_b.entry.is_some(), "frozen cursor keeps its entry port");
    }

    #[test]
    fn crashed_agent_is_met_where_it_stopped() {
        let t = line(9);
        // B walks 2 rounds toward A, crashes at node 6; A's walk gets there.
        let sched = Schedule::crash_after(2);
        let mut a = BasicWalker;
        let mut b = BasicWalker;
        let run = run_pair_scheduled(&t, 0, 8, &mut a, &mut b, &sched, 50, false);
        assert_eq!(run.outcome, Outcome::Met { round: 6, node: 6 });
    }

    #[test]
    fn observations_match_the_tree() {
        // The entry port reported to the agent is the port of the edge at
        // the node it ENTERS, per the model.
        let t = crate::runner::tests_support::random_tree_20();
        let mut cur = Cursor::new(0);
        let mut expect: Option<Port> = None;
        for _ in 0..200 {
            let obs = cur.obs(&t);
            assert_eq!(obs.entry, expect, "entry port mismatch");
            assert_eq!(obs.degree, t.degree(cur.node));
            // Always leave by the highest port.
            let exit = obs.degree - 1;
            expect = Some(t.entry_port(cur.node, exit));
            cur.apply(&t, Action::Move(exit));
        }
    }

    #[test]
    fn traces_record_positions() {
        let t = line(5);
        let run = run_pair(
            &t,
            0,
            4,
            &mut BasicWalker,
            &mut Sitter,
            PairConfig { delay: 0, max_rounds: 4, record_traces: true },
        );
        assert_eq!(run.trace_a.as_ref().unwrap(), &vec![0, 1, 2, 3, 4]);
        assert_eq!(run.trace_b.as_ref().unwrap(), &vec![4, 4, 4, 4, 4]);
        assert!(run.outcome.met());
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_trees::Tree;

    pub fn random_tree_20() -> Tree {
        let mut rng = StdRng::seed_from_u64(1234);
        rvz_trees::generators::random_tree(20, &mut rng)
    }
}
