//! Single-agent, two-agent, and k-agent ensemble synchronous execution.
//!
//! Every multi-agent entry point — `run_pair*`, scheduled pairs, and the
//! k-agent [`run_ensemble`] family — is a thin activation-pattern wrapper
//! over ONE k-lane round loop (`run_ensemble_core`). The two-agent
//! functions are the `k = 2` specialization and produce bit-identical
//! results to the historical pair loop; gathering (all `k` co-located at
//! a round boundary) degenerates to rendezvous at `k = 2`.

use crate::schedule::{EnsembleSchedule, Schedule};
use rvz_agent::model::{Action, Agent, Obs};
use rvz_trees::{NodeId, Port, Tree};

/// An agent's physical situation: its node and the port by which it entered
/// (``None`` after a null move or before the first move).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    pub node: NodeId,
    pub entry: Option<Port>,
}

impl Cursor {
    pub fn new(node: NodeId) -> Self {
        Cursor { node, entry: None }
    }

    /// The observation the agent receives this round.
    pub fn obs(&self, t: &Tree) -> Obs {
        Obs { entry: self.entry, degree: t.degree(self.node) }
    }

    /// Applies an action; returns `true` if the agent moved.
    pub fn apply(&mut self, t: &Tree, action: Action) -> bool {
        match action.port(t.degree(self.node)) {
            None => {
                self.entry = None;
                false
            }
            Some(p) => {
                let next = t.neighbor(self.node, p);
                self.entry = Some(t.entry_port(self.node, p));
                self.node = next;
                true
            }
        }
    }
}

/// Result of a bounded single-agent run.
#[derive(Debug, Clone)]
pub struct SingleRun {
    pub cursor: Cursor,
    pub rounds: u64,
    /// Node occupied after every round (index 0 = start, before any action),
    /// when recording was requested.
    pub trace: Option<Vec<NodeId>>,
}

/// Runs one agent for exactly `rounds` rounds (or until it would act from an
/// isolated node, which cannot happen on trees with `n ≥ 2`).
///
/// Generic over the agent, so concrete callers get a monomorphized loop
/// (static dispatch); `&mut dyn Agent` callers keep working unchanged.
pub fn run_single<A: Agent + ?Sized>(
    t: &Tree,
    start: NodeId,
    agent: &mut A,
    rounds: u64,
    record: bool,
) -> SingleRun {
    let mut cur = Cursor::new(start);
    let mut trace = record.then(|| {
        let mut v = Vec::with_capacity(rounds as usize + 1);
        v.push(start);
        v
    });
    for _ in 0..rounds {
        let action = agent.act(cur.obs(t));
        cur.apply(t, action);
        if let Some(tr) = trace.as_mut() {
            tr.push(cur.node);
        }
    }
    SingleRun { cursor: cur, rounds, trace }
}

/// Outcome of a two-agent run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The agents occupied the same node at the end of `round`
    /// (`round == 0` means the initial positions coincided).
    Met { round: u64, node: NodeId },
    /// No meeting within the round budget.
    Timeout { rounds: u64 },
}

impl Outcome {
    pub fn met(&self) -> bool {
        matches!(self, Outcome::Met { .. })
    }

    /// The meeting round, if any.
    pub fn round(&self) -> Option<u64> {
        match self {
            Outcome::Met { round, .. } => Some(*round),
            Outcome::Timeout { .. } => None,
        }
    }
}

/// Configuration of a two-agent run.
#[derive(Debug, Clone, Copy)]
pub struct PairConfig {
    /// Agent B starts `delay` rounds after agent A (the adversary's θ; 0 =
    /// simultaneous start). While unstarted, B sits at its initial node and
    /// can be met there.
    pub delay: u64,
    /// Round budget.
    pub max_rounds: u64,
    /// Record per-round node traces (memory-heavy; tests only).
    pub record_traces: bool,
}

impl PairConfig {
    pub fn simultaneous(max_rounds: u64) -> Self {
        PairConfig { delay: 0, max_rounds, record_traces: false }
    }

    pub fn delayed(delay: u64, max_rounds: u64) -> Self {
        PairConfig { delay, max_rounds, record_traces: false }
    }
}

/// Result of a two-agent run.
#[derive(Debug, Clone)]
pub struct PairRun {
    pub outcome: Outcome,
    /// Number of rounds in which the agents swapped endpoints of one edge
    /// (crossed inside it). Key instrumentation for the parity arguments of
    /// §4.2 (crossing ⇒ no meeting that round).
    pub crossings: u64,
    pub final_a: Cursor,
    pub final_b: Cursor,
    pub trace_a: Option<Vec<NodeId>>,
    pub trace_b: Option<Vec<NodeId>>,
}

/// Runs two agents with the given start delay until they meet or the budget
/// runs out. Both agents receive observations and move simultaneously within
/// a round; meeting is co-location at a round boundary.
///
/// Dyn-dispatch wrapper over [`run_pair_fsa`], kept for heterogeneous
/// callers; hot loops with concrete agent types should call
/// [`run_pair_fsa`] directly to get a monomorphized round loop.
pub fn run_pair(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut dyn Agent,
    agent_b: &mut dyn Agent,
    cfg: PairConfig,
) -> PairRun {
    run_pair_fsa(t, start_a, start_b, agent_a, agent_b, cfg)
}

/// The monomorphic two-agent fast path: generic over the agent types, so
/// every concrete instantiation compiles to a round loop with static
/// dispatch and inlined `act`/`apply` calls — no per-round vtable hops.
/// [`run_pair`] is the dyn-compatible wrapper over this.
pub fn run_pair_fsa<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    cfg: PairConfig,
) -> PairRun {
    // The start-delay activation pattern as a closure: A from round 1, B
    // from round delay+1. Inlines into the shared core loop, compiling to
    // the same per-round comparison the pre-schedule loop ran.
    run_pair_core(t, start_a, start_b, agent_a, agent_b, cfg.max_rounds, cfg.record_traces, |r| {
        (true, r > cfg.delay)
    })
}

/// Runs two agents under an arbitrary activation [`Schedule`] until they
/// meet or the budget runs out. Dyn-dispatch wrapper over
/// [`run_pair_scheduled_fsa`], mirroring [`run_pair`] over
/// [`run_pair_fsa`].
///
/// Frozen semantics: an agent whose flag is off for a round neither
/// observes nor acts — its cursor (node *and* entry port) is untouched,
/// so its k-th activation sees exactly what it would see in an
/// uninterrupted run. [`Schedule::start_delay`]`(θ)` therefore reproduces
/// [`run_pair`] with `cfg.delay = θ` bit for bit, and a meeting can
/// happen in a round in which neither agent was activated only at round 0
/// (identical starts).
pub fn run_pair_scheduled(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut dyn Agent,
    agent_b: &mut dyn Agent,
    schedule: &Schedule,
    max_rounds: u64,
    record_traces: bool,
) -> PairRun {
    run_pair_scheduled_fsa(
        t,
        start_a,
        start_b,
        agent_a,
        agent_b,
        schedule,
        max_rounds,
        record_traces,
    )
}

/// The monomorphic scheduled fast path; see [`run_pair_scheduled`] for
/// the activation semantics.
#[allow(clippy::too_many_arguments)]
pub fn run_pair_scheduled_fsa<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    schedule: &Schedule,
    max_rounds: u64,
    record_traces: bool,
) -> PairRun {
    run_pair_core(t, start_a, start_b, agent_a, agent_b, max_rounds, record_traces, |r| {
        schedule.active(r)
    })
}

/// The two-agent adapter over the k-lane core: `active(round)` says which
/// agents are activated in each round (1-based). Every pair entry point
/// above funnels through this into [`run_ensemble_core`].
#[allow(clippy::too_many_arguments)]
fn run_pair_core<A: Agent + ?Sized, B: Agent + ?Sized>(
    t: &Tree,
    start_a: NodeId,
    start_b: NodeId,
    agent_a: &mut A,
    agent_b: &mut B,
    max_rounds: u64,
    record_traces: bool,
    mut active: impl FnMut(u64) -> (bool, bool),
) -> PairRun {
    let mut run = run_ensemble_core(
        t,
        &[start_a, start_b],
        |lane, obs| {
            if lane == 0 {
                agent_a.act(obs)
            } else {
                agent_b.act(obs)
            }
        },
        |round, lane| {
            let (on_a, on_b) = active(round);
            if lane == 0 {
                on_a
            } else {
                on_b
            }
        },
        max_rounds,
        record_traces,
    );
    let trace_b = run.traces.as_mut().map(|tr| tr.pop().expect("lane B trace"));
    let trace_a = run.traces.as_mut().map(|tr| tr.pop().expect("lane A trace"));
    PairRun {
        outcome: run.outcome,
        crossings: run.crossings,
        final_a: run.finals[0],
        final_b: run.finals[1],
        trace_a,
        trace_b,
    }
}

/// Row-major upper-triangle index of the unordered pair `(i, j)`,
/// `i < j`, among `k` agents — the layout of
/// [`EnsembleRun::pair_meetings`].
pub fn pair_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    i * (2 * k - i - 1) / 2 + (j - i - 1)
}

/// Result of a k-agent ensemble run.
///
/// `outcome` is the *gathering* verdict: [`Outcome::Met`] means all `k`
/// agents were co-located at a round boundary (at `k = 2` this is
/// exactly rendezvous). Pairwise first-meeting rounds are reported
/// separately — a pair can meet without the ensemble ever gathering.
#[derive(Debug, Clone)]
pub struct EnsembleRun {
    pub outcome: Outcome,
    /// Number of `(round, pair)` events in which two agents swapped the
    /// endpoints of one edge without co-locating. At `k = 2` this is the
    /// pair run's crossing count.
    pub crossings: u64,
    /// Final cursor of each lane, in lane order.
    pub finals: Vec<Cursor>,
    /// Per-lane node traces (index 0 = start), when recording was
    /// requested.
    pub traces: Option<Vec<Vec<NodeId>>>,
    /// Round at which each unordered pair `(i, j)`, `i < j`, first
    /// co-located (round 0 = identical starts), in [`pair_index`]
    /// layout; `None` if that pair never met.
    pub pair_meetings: Vec<Option<u64>>,
}

/// Runs `k` boxed agents under an ensemble schedule. Convenience wrapper
/// over [`run_ensemble_with`] for heterogeneous agent banks.
///
/// Budget semantics (the one definition every engine shares):
/// `max_rounds` counts **global rounds**, not activations — a frozen
/// round burns budget exactly like an active one, and a lane delayed by
/// θ is activated `max_rounds − θ` times within the budget. This is the
/// `run_pair` definition; the retired `sim::multi` API measured the same
/// quantity, and [`run_ensemble`] now pins it for every `k`.
pub fn run_ensemble(
    t: &Tree,
    starts: &[NodeId],
    agents: &mut [Box<dyn Agent>],
    schedule: &EnsembleSchedule,
    max_rounds: u64,
    record_traces: bool,
) -> EnsembleRun {
    assert_eq!(agents.len(), starts.len(), "one agent per start");
    run_ensemble_with(
        t,
        starts,
        |lane, obs| agents[lane].act(obs),
        schedule,
        max_rounds,
        record_traces,
    )
}

/// Runs a homogeneous ensemble (`k` agents of one concrete type) under a
/// schedule — the monomorphized fast path mirroring [`run_pair_fsa`].
pub fn run_ensemble_fsa<A: Agent>(
    t: &Tree,
    starts: &[NodeId],
    agents: &mut [A],
    schedule: &EnsembleSchedule,
    max_rounds: u64,
    record_traces: bool,
) -> EnsembleRun {
    assert_eq!(agents.len(), starts.len(), "one agent per start");
    run_ensemble_with(
        t,
        starts,
        |lane, obs| agents[lane].act(obs),
        schedule,
        max_rounds,
        record_traces,
    )
}

/// Runs `k` agents given by an `act(lane, obs)` closure under an
/// ensemble schedule — the fully general entry point; see
/// [`run_ensemble`] for the budget semantics.
pub fn run_ensemble_with(
    t: &Tree,
    starts: &[NodeId],
    act: impl FnMut(usize, Obs) -> Action,
    schedule: &EnsembleSchedule,
    max_rounds: u64,
    record_traces: bool,
) -> EnsembleRun {
    assert_eq!(
        schedule.lanes(),
        starts.len(),
        "the schedule must cover exactly the ensemble's lanes"
    );
    run_ensemble_core(
        t,
        starts,
        act,
        |round, lane| schedule.active(round)[lane],
        max_rounds,
        record_traces,
    )
}

/// THE k-lane round loop — the only stepping loop in the simulator.
/// `act(lane, obs)` steps one agent; `active(round, lane)` is the
/// adversary's activation flag (rounds are 1-based; lanes are queried in
/// order within a round). Gathering / meeting is co-location at a round
/// boundary; crossings (edge-endpoint swaps) never count as meetings.
fn run_ensemble_core(
    t: &Tree,
    starts: &[NodeId],
    mut act: impl FnMut(usize, Obs) -> Action,
    mut active: impl FnMut(u64, usize) -> bool,
    max_rounds: u64,
    record_traces: bool,
) -> EnsembleRun {
    let k = starts.len();
    assert!(k >= 2, "an ensemble needs at least two agents");
    let mut cursors: Vec<Cursor> = starts.iter().map(|&s| Cursor::new(s)).collect();
    let mut prev: Vec<NodeId> = starts.to_vec();
    let mut crossings = 0u64;
    let mut traces = record_traces.then(|| starts.iter().map(|&s| vec![s]).collect::<Vec<_>>());
    let mut pair_meetings: Vec<Option<u64>> = vec![None; k * (k - 1) / 2];

    // Records first co-locations for this round and answers whether the
    // whole ensemble is gathered.
    let check = |cursors: &[Cursor], round: u64, pair_meetings: &mut [Option<u64>]| {
        let mut all = true;
        for i in 0..k {
            for j in (i + 1)..k {
                if cursors[i].node == cursors[j].node {
                    pair_meetings[pair_index(k, i, j)].get_or_insert(round);
                } else {
                    all = false;
                }
            }
        }
        all
    };

    let finish = |outcome: Outcome,
                  cursors: Vec<Cursor>,
                  crossings: u64,
                  traces: Option<Vec<Vec<NodeId>>>,
                  pair_meetings: Vec<Option<u64>>| EnsembleRun {
        outcome,
        crossings,
        finals: cursors,
        traces,
        pair_meetings,
    };

    if check(&cursors, 0, &mut pair_meetings) {
        let node = cursors[0].node;
        return finish(Outcome::Met { round: 0, node }, cursors, 0, traces, pair_meetings);
    }

    for round in 1..=max_rounds {
        if round & 0xFFF == 0 {
            crate::cancel::checkpoint();
        }
        for (i, cur) in cursors.iter().enumerate() {
            prev[i] = cur.node;
        }
        for i in 0..k {
            if active(round, i) {
                let action = act(i, cursors[i].obs(t));
                cursors[i].apply(t, action);
            }
        }
        if let Some(trs) = traces.as_mut() {
            for (tr, cur) in trs.iter_mut().zip(&cursors) {
                tr.push(cur.node);
            }
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if cursors[i].node == prev[j]
                    && cursors[j].node == prev[i]
                    && cursors[i].node != cursors[j].node
                {
                    crossings += 1;
                }
            }
        }
        if check(&cursors, round, &mut pair_meetings) {
            let node = cursors[0].node;
            return finish(Outcome::Met { round, node }, cursors, crossings, traces, pair_meetings);
        }
    }
    finish(Outcome::Timeout { rounds: max_rounds }, cursors, crossings, traces, pair_meetings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_agent::model::bw_exit;
    use rvz_trees::generators::{colored_line, line, star};

    /// Plain basic-walk agent (procedural).
    #[derive(Clone, Default)]
    struct BasicWalker;

    impl Agent for BasicWalker {
        fn act(&mut self, obs: Obs) -> Action {
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    /// Never moves.
    #[derive(Clone, Default)]
    struct Sitter;

    impl Agent for Sitter {
        fn act(&mut self, _obs: Obs) -> Action {
            Action::Stay
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    #[test]
    fn basic_walk_period_is_2n_minus_2() {
        // §2.2: a basic walk of length 2(n−1) returns to its start.
        for n in [2usize, 3, 5, 10, 33] {
            let t = line(n);
            let run = run_single(&t, 0, &mut BasicWalker, 2 * (n as u64 - 1), false);
            assert_eq!(run.cursor.node, 0, "n={n}");
        }
        let s = star(7);
        let run = run_single(&s, 1, &mut BasicWalker, 2 * 7, false);
        assert_eq!(run.cursor.node, 1);
    }

    #[test]
    fn basic_walk_covers_all_nodes() {
        let t = crate::runner::tests_support::random_tree_20();
        let n = t.num_nodes();
        let run = run_single(&t, 0, &mut BasicWalker, 2 * (n as u64 - 1), true);
        let mut seen = vec![false; n];
        for &v in run.trace.as_ref().unwrap() {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "Euler tour must cover the tree");
    }

    #[test]
    fn walker_meets_sitter() {
        let t = line(9);
        let run = run_pair(&t, 0, 5, &mut BasicWalker, &mut Sitter, PairConfig::simultaneous(100));
        assert_eq!(run.outcome, Outcome::Met { round: 5, node: 5 });
    }

    #[test]
    fn delayed_agent_is_met_at_home() {
        let t = line(9);
        // B delayed past the horizon: A's walk reaches B's home anyway.
        let run =
            run_pair(&t, 0, 6, &mut BasicWalker, &mut BasicWalker, PairConfig::delayed(1_000, 100));
        assert_eq!(run.outcome, Outcome::Met { round: 6, node: 6 });
    }

    #[test]
    fn crossing_is_not_meeting() {
        // Two walkers launched toward each other at odd distance cross
        // inside an edge and never co-locate on a cycle-free shuttle.
        let t = colored_line(2, 0); // single edge
        let run =
            run_pair(&t, 0, 1, &mut BasicWalker, &mut BasicWalker, PairConfig::simultaneous(10));
        assert!(!run.outcome.met());
        assert!(run.crossings > 0);
    }

    #[test]
    fn same_start_meets_at_round_zero() {
        let t = line(4);
        let run =
            run_pair(&t, 2, 2, &mut BasicWalker, &mut BasicWalker, PairConfig::simultaneous(10));
        assert_eq!(run.outcome, Outcome::Met { round: 0, node: 2 });
    }

    #[test]
    fn delayed_agent_first_acts_at_round_delay_plus_one() {
        // The delayed agent must sit still through rounds 1..=delay and
        // take its first action in round delay+1.
        struct CountingWalker {
            activations: u64,
        }
        impl Agent for CountingWalker {
            fn act(&mut self, obs: Obs) -> Action {
                self.activations += 1;
                Action::Move(bw_exit(obs.entry, obs.degree))
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        let t = line(30);
        let mut a = Sitter;
        let mut b = CountingWalker { activations: 0 };
        let run = run_pair(
            &t,
            0,
            20,
            &mut a,
            &mut b,
            PairConfig { delay: 7, max_rounds: 12, record_traces: true },
        );
        assert!(!run.outcome.met());
        // 12 rounds total, active in rounds 8..=12.
        assert_eq!(b.activations, 5);
        let tb = run.trace_b.unwrap();
        assert!(tb[..8].iter().all(|&v| v == 20), "parked through the delay");
        assert_ne!(tb[8], 20, "first move in round 8");
    }

    #[test]
    fn start_delay_schedule_reproduces_the_legacy_delay_path() {
        let t = line(11);
        for delay in [0u64, 1, 3, 9] {
            for (a, b) in [(0u32, 7u32), (2, 10)] {
                let cfg = PairConfig { delay, max_rounds: 80, record_traces: true };
                let mut x = BasicWalker;
                let mut y = BasicWalker;
                let legacy = run_pair(&t, a, b, &mut x, &mut y, cfg);
                let sched = Schedule::start_delay(delay);
                let mut x = BasicWalker;
                let mut y = BasicWalker;
                let scheduled = run_pair_scheduled(&t, a, b, &mut x, &mut y, &sched, 80, true);
                assert_eq!(scheduled.outcome, legacy.outcome, "θ={delay} ({a},{b})");
                assert_eq!(scheduled.crossings, legacy.crossings);
                assert_eq!(scheduled.final_a, legacy.final_a);
                assert_eq!(scheduled.final_b, legacy.final_b);
                assert_eq!(scheduled.trace_a, legacy.trace_a);
                assert_eq!(scheduled.trace_b, legacy.trace_b);
            }
        }
    }

    #[test]
    fn frozen_agent_keeps_cursor_and_perceives_nothing() {
        // Under intermittent(2, 1) agent B acts only in even rounds; its
        // activation count after r rounds is ⌊r/2⌋, and each activation
        // must see the observation of an uninterrupted run (the frozen
        // rounds are invisible to it).
        struct Probe {
            seen: Vec<Obs>,
        }
        impl Agent for Probe {
            fn act(&mut self, obs: Obs) -> Action {
                self.seen.push(obs);
                Action::Move(bw_exit(obs.entry, obs.degree))
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        let t = line(16);
        let sched = Schedule::intermittent(2, 1);
        let mut a = Sitter;
        let mut b = Probe { seen: Vec::new() };
        let run = run_pair_scheduled(&t, 0, 15, &mut a, &mut b, &sched, 9, true);
        assert!(!run.outcome.met());
        assert_eq!(b.seen.len(), 4, "active in rounds 2, 4, 6, 8");
        // The frozen agent's observations are the uninterrupted walk's.
        let mut solo = Probe { seen: Vec::new() };
        run_single(&t, 15, &mut solo, 4, false);
        assert_eq!(b.seen, solo.seen[..4]);
        // Its trace holds each position for two rounds.
        let tb = run.trace_b.unwrap();
        assert_eq!(tb, vec![15, 15, 14, 14, 13, 13, 12, 12, 11, 11]);
        // Final cursor: last activation (round 8) moved it, so the entry
        // port is the one that activation set, despite round 9 freezing.
        assert_eq!(run.final_b.node, 11);
        assert!(run.final_b.entry.is_some(), "frozen cursor keeps its entry port");
    }

    #[test]
    fn crashed_agent_is_met_where_it_stopped() {
        let t = line(9);
        // B walks 2 rounds toward A, crashes at node 6; A's walk gets there.
        let sched = Schedule::crash_after(2);
        let mut a = BasicWalker;
        let mut b = BasicWalker;
        let run = run_pair_scheduled(&t, 0, 8, &mut a, &mut b, &sched, 50, false);
        assert_eq!(run.outcome, Outcome::Met { round: 6, node: 6 });
    }

    #[test]
    fn observations_match_the_tree() {
        // The entry port reported to the agent is the port of the edge at
        // the node it ENTERS, per the model.
        let t = crate::runner::tests_support::random_tree_20();
        let mut cur = Cursor::new(0);
        let mut expect: Option<Port> = None;
        for _ in 0..200 {
            let obs = cur.obs(&t);
            assert_eq!(obs.entry, expect, "entry port mismatch");
            assert_eq!(obs.degree, t.degree(cur.node));
            // Always leave by the highest port.
            let exit = obs.degree - 1;
            expect = Some(t.entry_port(cur.node, exit));
            cur.apply(&t, Action::Move(exit));
        }
    }

    #[test]
    fn traces_record_positions() {
        let t = line(5);
        let run = run_pair(
            &t,
            0,
            4,
            &mut BasicWalker,
            &mut Sitter,
            PairConfig { delay: 0, max_rounds: 4, record_traces: true },
        );
        assert_eq!(run.trace_a.as_ref().unwrap(), &vec![0, 1, 2, 3, 4]);
        assert_eq!(run.trace_b.as_ref().unwrap(), &vec![4, 4, 4, 4, 4]);
        assert!(run.outcome.met());
    }

    // ---- ensemble (k-agent gathering) semantics, ported from the
    // retired `sim::multi` module and pinned against the pair engines ----

    use crate::schedule::EnsembleSchedule;
    use rvz_trees::generators::spider;

    fn walkers_and_sitters(walkers: usize, sitters: usize) -> Vec<Box<dyn Agent>> {
        let mut v: Vec<Box<dyn Agent>> = Vec::new();
        for _ in 0..walkers {
            v.push(Box::new(BasicWalker));
        }
        for _ in 0..sitters {
            v.push(Box::new(Sitter));
        }
        v
    }

    #[test]
    fn three_walkers_gather_on_sitter() {
        let t = line(7);
        let mut agents = walkers_and_sitters(2, 1);
        // Walkers from both leaves sweep the line; the sitter sits at 3.
        // From symmetric leaves with simultaneous start the walkers stay
        // mirrored: both reach 3 at round 3.
        let run = run_ensemble(
            &t,
            &[0, 6, 3],
            &mut agents,
            &EnsembleSchedule::simultaneous(3),
            200,
            false,
        );
        assert_eq!(run.outcome, Outcome::Met { round: 3, node: 3 });
        assert!(run.pair_meetings.iter().all(|m| m.is_some()));
    }

    #[test]
    fn pairwise_meetings_recorded_without_gathering() {
        let t = line(6);
        let mut agents = walkers_and_sitters(1, 2);
        let run =
            run_ensemble(&t, &[0, 2, 5], &mut agents, &EnsembleSchedule::simultaneous(3), 4, false);
        // The walker reaches the first sitter (node 2) at round 2 but the
        // far sitter is never reached within 4 rounds.
        assert_eq!(run.outcome, Outcome::Timeout { rounds: 4 });
        assert_eq!(run.pair_meetings[pair_index(3, 0, 1)], Some(2));
        assert_eq!(run.pair_meetings[pair_index(3, 0, 2)], None);
        assert_eq!(run.pair_meetings[pair_index(3, 1, 2)], None);
    }

    #[test]
    fn ensemble_start_delays_are_respected() {
        let t = star(4);
        let mut agents = walkers_and_sitters(1, 1);
        // The walker is frozen for 5 rounds, then moves to the hub (node 0)
        // where the sitter lives: gathered at round 6.
        let sched = EnsembleSchedule::start_delays(&[5, 0]);
        let run = run_ensemble(&t, &[1, 0], &mut agents, &sched, 20, false);
        assert_eq!(run.outcome, Outcome::Met { round: 6, node: 0 });
    }

    #[test]
    fn initial_colocated_gathering() {
        let t = line(3);
        let mut agents = walkers_and_sitters(0, 2);
        let run =
            run_ensemble(&t, &[1, 1], &mut agents, &EnsembleSchedule::simultaneous(2), 10, false);
        assert_eq!(run.outcome, Outcome::Met { round: 0, node: 1 });
    }

    #[test]
    fn budget_exhaustion_reports_timeout_and_final_positions() {
        // Two sitters apart can never gather: the run must burn exactly the
        // budget, report `Timeout { rounds }`, keep everyone in place, and
        // leave every pair meeting unset.
        let t = line(5);
        let mut agents = walkers_and_sitters(0, 2);
        let run =
            run_ensemble(&t, &[0, 4], &mut agents, &EnsembleSchedule::simultaneous(2), 7, false);
        assert_eq!(run.outcome, Outcome::Timeout { rounds: 7 });
        assert_eq!(run.finals.iter().map(|c| c.node).collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(run.pair_meetings, vec![None]);
    }

    #[test]
    fn three_walkers_gather_on_a_spider_with_delays() {
        // Two basic walkers from leg tips plus a sitter at the hub. A tip
        // walker's Euler tour passes the hub at local steps 3, 9 and 15 of
        // its 18-round period, so delaying walker A by 6 aligns its first
        // hub visit (global round 9) with walker B's second: gathering at 9.
        let t = spider(3, 3); // hub 0; legs of length 3
        let mut agents = walkers_and_sitters(2, 1);
        let tip_a = 3; // end of the first leg
        let tip_b = 6; // end of the second leg
        let sched = EnsembleSchedule::start_delays(&[6, 0, 0]);
        let run = run_ensemble(&t, &[tip_a, tip_b, 0], &mut agents, &sched, 100, false);
        assert_eq!(run.outcome, Outcome::Met { round: 9, node: 0 });
        // The undelayed walker reaches the hub sitter first (round 3):
        // pair (1,2) met before the full gathering.
        assert_eq!(run.pair_meetings[pair_index(3, 1, 2)], Some(3));
        assert_eq!(run.pair_meetings[pair_index(3, 0, 1)], Some(9));
        assert_eq!(run.pair_meetings[pair_index(3, 0, 2)], Some(9));
    }

    #[test]
    fn gathering_is_colocation_at_a_round_boundary_not_crossing() {
        // Two walkers swapping the endpoints of a single edge cross inside
        // it forever; gathering semantics must never fire (§2.1: meeting is
        // co-location at the end of a round).
        let t = colored_line(2, 0); // a single edge
        let mut agents = walkers_and_sitters(2, 0);
        let run =
            run_ensemble(&t, &[0, 1], &mut agents, &EnsembleSchedule::simultaneous(2), 50, false);
        assert_eq!(run.outcome, Outcome::Timeout { rounds: 50 });
        assert_eq!(run.pair_meetings, vec![None]);
        assert_eq!(run.crossings, 50, "the walkers swap endpoints every round");
    }

    #[test]
    fn four_agent_pair_meetings_use_the_upper_triangle_layout() {
        // k = 4: six pairs; a walker sweeping the line meets each sitter in
        // distance order, and the sitter pairs never co-locate.
        let t = line(7);
        let mut agents = walkers_and_sitters(1, 3);
        let run = run_ensemble(
            &t,
            &[0, 2, 4, 6],
            &mut agents,
            &EnsembleSchedule::simultaneous(4),
            5,
            false,
        );
        assert_eq!(run.outcome, Outcome::Timeout { rounds: 5 });
        assert_eq!(run.pair_meetings.len(), 6);
        assert_eq!(run.pair_meetings[pair_index(4, 0, 1)], Some(2));
        assert_eq!(run.pair_meetings[pair_index(4, 0, 2)], Some(4));
        assert_eq!(run.pair_meetings[pair_index(4, 0, 3)], None, "line end not reached in 5");
        for (i, j) in [(1, 2), (1, 3), (2, 3)] {
            assert_eq!(run.pair_meetings[pair_index(4, i, j)], None, "sitters ({i},{j})");
        }
    }

    #[test]
    fn ensemble_at_k2_matches_run_pair_bit_for_bit() {
        // The pair engines are the k = 2 specialization of the ensemble
        // core — same outcome, crossings, finals and traces for every
        // schedule class.
        let t = line(11);
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(3),
            Schedule::intermittent(2, 1),
            Schedule::crash_after(2),
            Schedule::adversarial(0x5EED, 5, 4),
        ];
        for s in &schedules {
            for (a, b) in [(0u32, 7u32), (2, 10), (10, 1)] {
                let mut x = BasicWalker;
                let mut y = BasicWalker;
                let pair = run_pair_scheduled(&t, a, b, &mut x, &mut y, s, 60, true);
                let mut agents = walkers_and_sitters(2, 0);
                let ens = run_ensemble(
                    &t,
                    &[a, b],
                    &mut agents,
                    &EnsembleSchedule::from_pair(s),
                    60,
                    true,
                );
                assert_eq!(ens.outcome, pair.outcome, "{s:?} ({a},{b})");
                assert_eq!(ens.crossings, pair.crossings);
                assert_eq!(ens.finals[0], pair.final_a);
                assert_eq!(ens.finals[1], pair.final_b);
                let traces = ens.traces.expect("recorded");
                assert_eq!(Some(&traces[0]), pair.trace_a.as_ref());
                assert_eq!(Some(&traces[1]), pair.trace_b.as_ref());
                // The pair meeting round IS the gathering round at k = 2.
                assert_eq!(ens.pair_meetings[0], pair.outcome.round());
            }
        }
    }

    #[test]
    fn ensemble_budget_counts_rounds_not_activations() {
        // THE budget definition (the `MultiConfig` unification bugfix):
        // `max_rounds` counts global rounds — frozen rounds burn budget —
        // so a lane delayed by θ is activated exactly max_rounds − θ times
        // and the run never exceeds max_rounds rounds, matching
        // `run_pair`'s historical behavior at k = 2.
        let t = line(30);
        let budget = 12u64;
        let theta = 7u64;
        let mut activations = [0u64; 2];
        let sched = EnsembleSchedule::start_delays(&[0, theta]);
        let mut walker = BasicWalker;
        let run = run_ensemble_with(
            &t,
            &[0, 20],
            |lane, obs| {
                activations[lane] += 1;
                if lane == 0 {
                    Action::Stay
                } else {
                    walker.act(obs)
                }
            },
            &sched,
            budget,
            false,
        );
        assert_eq!(run.outcome, Outcome::Timeout { rounds: budget });
        assert_eq!(activations[0], budget, "undelayed lane acts every round");
        assert_eq!(activations[1], budget - theta, "delayed lane loses θ activations to budget");
        // And the k = 2 pair engine agrees on the same scenario.
        let mut a = Sitter;
        let mut b = BasicWalker;
        let pair = run_pair(
            &t,
            0,
            20,
            &mut a,
            &mut b,
            PairConfig { delay: theta, max_rounds: budget, record_traces: false },
        );
        assert_eq!(pair.outcome, run.outcome);
        assert_eq!(pair.final_b, run.finals[1]);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_trees::Tree;

    pub fn random_tree_20() -> Tree {
        let mut rng = StdRng::seed_from_u64(1234);
        rvz_trees::generators::random_tree(20, &mut rng)
    }
}
