//! Cooperative cancellation for watchdogged executor threads.
//!
//! The sweep's `--cell-timeout` watchdog used to abandon a timed-out
//! attempt by detaching its thread — the thread kept stepping (or
//! deciding) to the end of a budget that could be billions of rounds
//! away, so a sweep with many timeouts accumulated live threads without
//! bound. This module is the fix: the watchdog installs a per-attempt
//! cancellation flag on the worker thread ([`CancelGuard::install`]),
//! sets it when the wall budget expires, and every long-running loop in
//! the executor stack (the simulator round loop, trace recording and
//! replay, the exact decider's tabulations and scans) polls
//! [`checkpoint`] every few thousand iterations.
//!
//! **Cancellation escapes by panic, never by value.** [`checkpoint`]
//! panics with the private [`Cancelled`] payload instead of returning a
//! sentinel, so a cancelled attempt can never fabricate a result that
//! the process-wide memo caches (`decide_memo`, the trace/solo stores)
//! would keep: an unwound `OnceLock::get_or_init` leaves its slot
//! uninitialized, and an unwound trace extension leaves the recording at
//! the last *completed* round (checkpoints sit only at round
//! boundaries). The watchdog thread catches the payload with
//! `catch_unwind` and exits silently; any other panic is resumed
//! unchanged.
//!
//! Threads that never install a flag — every ordinary caller — pay one
//! thread-local read per poll and can never be cancelled.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The panic payload of a cancelled attempt. Deliberately carries no
/// data: its only job is to be recognizable by
/// [`CancelGuard::is_cancelled_payload`] on the `catch_unwind` side (and
/// by the quiet panic hook, so a routine cancellation does not spray a
/// backtrace onto stderr).
pub struct Cancelled;

thread_local! {
    /// The flag governing this thread, if a watchdog installed one.
    /// `Cell<Option<Arc<..>>>` (take/replace) rather than `RefCell`: the
    /// poll path must never panic on re-entrancy.
    static CURRENT: Cell<Option<Arc<AtomicBool>>> = const { Cell::new(None) };
}

/// RAII installation of a cancellation flag on the current thread; the
/// previous flag (normally `None`) is restored on drop, so a guard can
/// never leak a stale flag into an unrelated reused thread.
pub struct CancelGuard {
    previous: Option<Arc<AtomicBool>>,
}

impl CancelGuard {
    /// Makes `flag` the current thread's cancellation flag until the
    /// guard drops.
    pub fn install(flag: Arc<AtomicBool>) -> CancelGuard {
        CancelGuard { previous: CURRENT.with(|c| c.replace(Some(flag))) }
    }

    /// `true` when a caught panic payload is a cancellation escape (and
    /// not a real failure that must be resumed).
    pub fn is_cancelled_payload(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.is::<Cancelled>()
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous.take()));
    }
}

/// `true` when the current thread has been asked to stop.
#[inline]
pub fn requested() -> bool {
    CURRENT.with(|c| {
        let flag = c.take();
        let hit = flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed));
        c.set(flag);
        hit
    })
}

/// Poll point for long-running loops: unwinds with [`Cancelled`] when the
/// current thread's flag is set, does nothing otherwise. Call this only
/// at *consistent* states (round boundaries, between records) — whatever
/// shared structure the caller is mutating must be valid if the stack
/// unwinds here.
#[inline]
pub fn checkpoint() {
    if requested() {
        std::panic::panic_any(Cancelled);
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`Cancelled`] payloads and delegates everything else to the previous
/// hook. Without this every routine cancellation would print a
/// `thread panicked` banner even though the watchdog catches it.
pub fn silence_cancelled_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<Cancelled>() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flag_means_no_cancellation() {
        assert!(!requested());
        checkpoint(); // must not panic
    }

    #[test]
    fn guard_installs_and_restores() {
        let flag = Arc::new(AtomicBool::new(false));
        {
            let _g = CancelGuard::install(Arc::clone(&flag));
            assert!(!requested());
            flag.store(true, Ordering::Relaxed);
            assert!(requested());
            let caught = std::panic::catch_unwind(checkpoint).expect_err("must unwind");
            assert!(CancelGuard::is_cancelled_payload(&*caught));
        }
        // Guard dropped: the thread is no longer cancellable.
        assert!(!requested());
        checkpoint();
    }

    #[test]
    fn nested_guards_restore_the_outer_flag() {
        let outer = Arc::new(AtomicBool::new(true));
        let inner = Arc::new(AtomicBool::new(false));
        let _g1 = CancelGuard::install(Arc::clone(&outer));
        {
            let _g2 = CancelGuard::install(Arc::clone(&inner));
            assert!(!requested(), "inner flag is unset");
        }
        assert!(requested(), "outer flag is set and restored");
        let _ = std::panic::catch_unwind(checkpoint);
    }
}
