//! Memory accounting (§2.1 of the paper; docs/design-notes.md §D2).
//!
//! The paper measures agent memory as the number of bits on which the
//! automaton states are encoded: an automaton with `K` states needs
//! `Θ(log K)` bits. Our procedural agents are automata whose state is a
//! tuple of bounded counters plus a phase tag; the measured memory is the
//! sum over counters of `ceil(log2(max_reached + 1))` plus
//! `ceil(log2(#phases))`.
//!
//! A [`Meter`] tracks named counters' maxima so experiments can report both
//! totals and per-component breakdowns.

/// Bits needed to store any value in `0..=max`: `ceil(log2(max + 1))`.
/// `bits_for(0) == 0` (a counter that never left zero stores nothing).
#[inline]
pub fn bits_for(max: u64) -> u64 {
    (64 - max.leading_zeros()) as u64
}

/// Bits needed to distinguish `n` variants: `ceil(log2(n))`.
#[inline]
pub fn bits_for_variants(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

/// A named high-water-mark tracker for an agent's counters.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    entries: Vec<(&'static str, u64)>,
}

impl Meter {
    pub fn new() -> Self {
        Meter::default()
    }

    /// Record that counter `name` reached `value` (keeps the maximum).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = e.1.max(value);
        } else {
            self.entries.push((name, value));
        }
    }

    /// The maximum recorded for `name` (0 if never observed).
    pub fn max_of(&self, name: &str) -> u64 {
        self.entries.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Total measured bits: sum of per-counter widths.
    pub fn total_bits(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| bits_for(v)).sum()
    }

    /// Per-counter breakdown `(name, max, bits)`.
    pub fn breakdown(&self) -> Vec<(&'static str, u64, u64)> {
        self.entries.iter().map(|&(n, v)| (n, v, bits_for(v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn variant_widths() {
        assert_eq!(bits_for_variants(0), 0);
        assert_eq!(bits_for_variants(1), 0);
        assert_eq!(bits_for_variants(2), 1);
        assert_eq!(bits_for_variants(3), 2);
        assert_eq!(bits_for_variants(4), 2);
        assert_eq!(bits_for_variants(5), 3);
    }

    #[test]
    fn meter_tracks_maxima() {
        let mut m = Meter::new();
        m.observe("prime", 2);
        m.observe("prime", 13);
        m.observe("prime", 5);
        m.observe("idle", 12);
        assert_eq!(m.max_of("prime"), 13);
        assert_eq!(m.total_bits(), bits_for(13) + bits_for(12));
        assert_eq!(m.breakdown().len(), 2);
        assert_eq!(m.max_of("missing"), 0);
    }
}
