//! # rvz-agent
//!
//! The mobile-agent model of Fraigniaud & Pelc (SPAA 2010), §2.1:
//! deterministic agents as abstract state machines `A = (S, π, λ, s0)`
//! reading input symbols `(entry port, degree)` and answering with null
//! moves or port choices.
//!
//! * [`model`] — the [`model::Agent`] trait, observations, actions, the
//!   basic-walk / counter-basic-walk port arithmetic, and the
//!   [`model::SubAgent`] composition protocol for hierarchical agents;
//! * [`meter`] — memory accounting: measured bits from counter
//!   high-water marks (DESIGN.md §D2);
//! * [`line_fsa`] — explicit automata for 2-edge-colored lines (the
//!   Theorem 3.1 / 4.2 model);
//! * [`fsa`] — explicit automata for bounded-degree trees (the Theorem 4.3
//!   model);
//! * [`compile`] — a state-memoizing compiler from procedural agents to
//!   explicit [`line_fsa::LineFsa`] automata, so the lower-bound adversaries
//!   can defeat our own upper-bound agents constructively.

pub mod compile;
pub mod fsa;
pub mod line_fsa;
pub mod meter;
pub mod model;

pub use fsa::{Fsa, FsaRunner, OwnedFsaRunner};
pub use line_fsa::{LineFsa, LineFsaRunner, StateId};
pub use meter::{bits_for, bits_for_variants, Meter};
pub use model::{bw_exit, cbw_exit, Action, Agent, Obs, Step, SubAgent};
