//! # rvz-agent
//!
//! The mobile-agent model of Fraigniaud & Pelc (SPAA 2010), §2.1:
//! deterministic agents as abstract state machines `A = (S, π, λ, s0)`
//! reading input symbols `(entry port, degree)` and answering with null
//! moves or port choices.
//!
//! * [`model`] — the [`model::Agent`] trait, observations, actions, the
//!   basic-walk / counter-basic-walk port arithmetic, and the
//!   [`model::SubAgent`] composition protocol for hierarchical agents;
//! * [`meter`] — memory accounting: measured bits from counter
//!   high-water marks (docs/design-notes.md §D2);
//! * [`line_fsa`] — explicit automata for 2-edge-colored lines (the
//!   Theorem 3.1 / 4.2 model);
//! * [`fsa`] — explicit automata for bounded-degree trees (the Theorem 4.3
//!   model);
//! * [`compile`] — a state-memoizing compiler from procedural agents to
//!   explicit [`line_fsa::LineFsa`] automata, so the lower-bound adversaries
//!   can defeat our own upper-bound agents constructively.
//!
//! ```
//! use rvz_agent::{bw_exit, Fsa};
//!
//! // §2.2 port arithmetic: the basic walk leaves by (entry + 1) mod degree,
//! // turns straight around at a leaf, and opens with port 0.
//! assert_eq!(bw_exit(Some(0), 3), 1);
//! assert_eq!(bw_exit(Some(0), 1), 0);
//! assert_eq!(bw_exit(None, 3), 0);
//! // The same walk as an explicit automaton (the e9/e10 decider's model):
//! // its configuration space is what makes rendezvous *decidable*.
//! let fsa = Fsa::basic_walk(3);
//! assert!(fsa.num_states() >= 1);
//! ```

pub mod compile;
pub mod fsa;
pub mod line_fsa;
pub mod meter;
pub mod model;

pub use fsa::{Fsa, FsaRunner, OwnedFsaRunner};
pub use line_fsa::{LineFsa, LineFsaRunner, StateId};
pub use meter::{bits_for, bits_for_variants, Meter};
pub use model::{bw_exit, cbw_exit, Action, Agent, Obs, Step, SubAgent};
