//! State-memoizing compiler: turns a *procedural* agent into an explicit
//! [`LineFsa`] by exhaustive reachability over its behavioral states.
//!
//! Why this exists: the lower-bound adversaries (Theorems 3.1 and 4.2) are
//! functions *from automata to instances*. Compiling our own upper-bound
//! agents (e.g. the `prime` path protocol with capped counters) lets the
//! adversaries defeat them constructively — the experiment that exhibits the
//! paper's titular gap end-to-end (docs/design-notes.md §D7).
//!
//! Model notes (edge-colored lines, §4.2): on a properly 2-edge-colored line
//! the entry port at the next node is determined by the agent's own last
//! exit — except for edges incident to a leaf, whose leaf-side port is
//! forced to 0. Bouncing at a leaf re-traverses the same edge, so tracking
//! the color of the *last traversed edge* (as seen from its internal end)
//! recovers the entry port in every case reachable from an internal start.
//! Compiled automata therefore assume the agent starts at an internal
//! (degree-2) node, which is how the adversaries place them.

use crate::line_fsa::{LineFsa, StateId};
use crate::model::{Action, Agent, Obs};
use std::collections::HashMap;
use std::hash::Hash;

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The reachable behavioral state space exceeded the configured cap:
    /// the agent is not (behaviorally) a bounded automaton at this cap.
    TooManyStates { cap: usize },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TooManyStates { cap } => {
                write!(f, "reachable state space exceeds cap {cap}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Wrapper state: the agent plus the edge-color bookkeeping.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Wrapped<A> {
    agent: A,
    /// Color (internal-end port) of the last traversed edge; `None` before
    /// any traversal.
    last_color: Option<u32>,
    /// Whether the previous action was a move (affects the next `entry`).
    moved: bool,
}

impl<A: Agent + Clone> Wrapped<A> {
    /// Feed one observation for a node of degree `d`; returns the action.
    fn advance(&mut self, d: u32) -> Action {
        let entry = if !self.moved {
            None
        } else if d == 1 {
            Some(0)
        } else {
            self.last_color
        };
        let action = self.agent.act(Obs { entry, degree: d });
        match action {
            Action::Stay => self.moved = false,
            Action::Move(raw) => {
                self.moved = true;
                if d == 2 {
                    self.last_color = Some(raw % 2);
                }
                // d == 1: bouncing at a leaf re-traverses the same edge:
                // last_color unchanged.
            }
        }
        action
    }
}

/// Compiles `make()`-produced agents into an explicit [`LineFsa`].
///
/// The construction enumerates all behavioral states reachable from an
/// internal (degree-2) start under inputs `d ∈ {1, 2}`. Each compiled state
/// carries the action the agent produced on entering it; transitions follow
/// the wrapper semantics above.
pub fn compile_line_agent<A, F>(make: F, cap: usize) -> Result<LineFsa, CompileError>
where
    A: Agent + Clone + Eq + Hash,
    F: Fn() -> A,
{
    // Initial compiled state: the fresh agent having performed its first
    // activation at an internal node.
    let mut first = Wrapped { agent: make(), last_color: None, moved: false };
    let first_action = first.advance(2);

    // The map owns one copy of each key; the FIFO work queue carries the
    // only other copy, made exactly once per discovered state. BFS in
    // discovery (= id) order, so `delta` rows land at their state's index.
    let mut ids: HashMap<Wrapped<A>, StateId> = HashMap::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut queue: std::collections::VecDeque<Wrapped<A>> = std::collections::VecDeque::new();
    let intern = |w: Wrapped<A>,
                  a: Action,
                  ids: &mut HashMap<Wrapped<A>, StateId>,
                  queue: &mut std::collections::VecDeque<Wrapped<A>>,
                  actions: &mut Vec<Action>|
     -> StateId {
        match ids.entry(w) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = actions.len() as StateId;
                queue.push_back(e.key().clone());
                e.insert(id);
                actions.push(a);
                id
            }
        }
    };

    let s0 = intern(first, first_action, &mut ids, &mut queue, &mut actions);
    let mut delta: Vec<[StateId; 2]> = Vec::new();
    while let Some(base) = queue.pop_front() {
        if actions.len() > cap {
            return Err(CompileError::TooManyStates { cap });
        }
        // d == 1 needs a working copy; d == 2 consumes `base`.
        let mut on_leaf = base.clone();
        let a1 = on_leaf.advance(1);
        let t1 = intern(on_leaf, a1, &mut ids, &mut queue, &mut actions);
        let mut on_internal = base;
        let a2 = on_internal.advance(2);
        let t2 = intern(on_internal, a2, &mut ids, &mut queue, &mut actions);
        delta.push([t1, t2]);
    }
    let lambda = actions
        .iter()
        .map(|a| match a {
            Action::Stay => -1i64,
            Action::Move(raw) => (*raw % 2) as i64,
        })
        .collect();
    let fsa = LineFsa::from_rows(delta, lambda, s0);
    debug_assert!(fsa.validate());
    Ok(fsa)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-written procedural agent: shuttles along the line,
    /// bouncing at leaves, with a modulo-3 idle pattern (stays every third
    /// round). Behavioral state: direction + phase counter.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Shuttler {
        phase: u8,
        started: bool,
    }

    impl Agent for Shuttler {
        fn act(&mut self, obs: Obs) -> Action {
            self.started = true;
            self.phase = (self.phase + 1) % 3;
            if self.phase == 0 {
                return Action::Stay;
            }
            match obs.entry {
                None => Action::Move(0),
                Some(i) => Action::Move((i + 1) % obs.degree.max(1)),
            }
        }
        fn memory_bits(&self) -> u64 {
            2
        }
    }

    #[test]
    fn compiles_small_agent() {
        let fsa = compile_line_agent(|| Shuttler { phase: 0, started: false }, 1000).unwrap();
        assert!(fsa.validate());
        assert!(fsa.num_states() <= 12, "got {}", fsa.num_states());
    }

    #[test]
    fn compiled_matches_procedural_on_a_line() {
        // Walk both the procedural agent (with real observations) and the
        // compiled automaton along an edge-colored line; actions must agree.
        use rvz_trees::generators::colored_line;
        let line = colored_line(12, 0);
        let fsa = compile_line_agent(|| Shuttler { phase: 0, started: false }, 1000).unwrap();
        let mut proc_agent = Shuttler { phase: 0, started: false };
        let mut fsa_agent = fsa.runner();
        let mut pos: rvz_trees::NodeId = 5;
        let mut entry: Option<u32> = None;
        for round in 0..200 {
            let obs = Obs { entry, degree: line.degree(pos) };
            let a1 = proc_agent.act(obs);
            let a2 = fsa_agent.act(obs);
            assert_eq!(a1.port(obs.degree), a2.port(obs.degree), "round {round}");
            match a1.port(obs.degree) {
                None => entry = None,
                Some(p) => {
                    let nxt = line.neighbor(pos, p);
                    entry = Some(line.entry_port(pos, p));
                    pos = nxt;
                }
            }
        }
    }

    #[test]
    fn compiled_states_grow_with_the_inner_state_space() {
        // Larger phase moduli ⇒ more behavioral states.
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct ModShuttler {
            modulus: u8,
            phase: u8,
        }
        impl Agent for ModShuttler {
            fn act(&mut self, obs: Obs) -> Action {
                self.phase = (self.phase + 1) % self.modulus;
                if self.phase == 0 {
                    return Action::Stay;
                }
                match obs.entry {
                    None => Action::Move(0),
                    Some(i) => Action::Move((i + 1) % obs.degree.max(1)),
                }
            }
            fn memory_bits(&self) -> u64 {
                8
            }
        }
        let mut prev = 0;
        for modulus in [2u8, 5, 11] {
            let fsa = compile_line_agent(|| ModShuttler { modulus, phase: 0 }, 10_000).unwrap();
            assert!(
                fsa.num_states() > prev,
                "modulus {modulus}: {} states not > {prev}",
                fsa.num_states()
            );
            prev = fsa.num_states();
        }
    }

    #[test]
    fn stay_only_agent_compiles_to_tiny_fsa() {
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Sitter;
        impl Agent for Sitter {
            fn act(&mut self, _: Obs) -> Action {
                Action::Stay
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        let fsa = compile_line_agent(|| Sitter, 16).unwrap();
        assert!(fsa.num_states() <= 2);
        assert_eq!(fsa.lambda[fsa.s0 as usize], -1);
    }

    #[test]
    fn cap_is_enforced() {
        /// Unboundedly counting agent: never a finite automaton.
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Counter(u64);
        impl Agent for Counter {
            fn act(&mut self, _: Obs) -> Action {
                self.0 += 1;
                Action::Move(0)
            }
            fn memory_bits(&self) -> u64 {
                64
            }
        }
        let err = compile_line_agent(|| Counter(0), 64).unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { cap: 64 });
    }
}
