//! General explicit finite automata for trees of bounded maximum degree —
//! the model used by the Theorem 4.3 adversary (trees of maximum degree 3,
//! arbitrary port labelings, so the full input symbol `(i, d)` matters).

use crate::meter::bits_for_variants;
use crate::model::{Action, Agent, Obs};
use rand::Rng;

pub use crate::line_fsa::StateId;

/// A finite-state agent for trees with degrees `1..=max_degree`.
///
/// Transitions are indexed by the paper's input symbol `(i, d)`: entry port
/// `i ∈ {-1, 0, …, max_degree-1}` (−1 encoded as index 0) and degree
/// `d ∈ {1, …, max_degree}`. The table is a single dense row-major array
/// with precomputed stride `(max_degree + 1) · max_degree`: state `s`'s
/// block is `delta[s·stride ..][entry_idx · max_degree + (d-1)]`. Construct
/// with [`Fsa::from_fn`]; read with [`Fsa::next`] / [`Fsa::transition`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fsa {
    pub max_degree: u32,
    /// Dense row-major transition table; see the struct docs for the layout.
    delta: Vec<StateId>,
    /// `lambda[s]`: `-1` = null move, else leave by `lambda[s] mod d`.
    pub lambda: Vec<i64>,
    pub s0: StateId,
}

impl Fsa {
    /// Per-state stride of the dense table.
    #[inline]
    fn stride(&self) -> usize {
        (self.max_degree + 1) as usize * self.max_degree as usize
    }

    /// The shared indexed constructor: fills the dense table by evaluating
    /// `f(state, entry, degree)` over the full input alphabet, with the
    /// entry port already decoded (`None` = the paper's `-1`). Every
    /// structured automaton ([`Fsa::basic_walk`], [`Fsa::from_line_extended`],
    /// [`Fsa::random`]) goes through here, so the `entry_idx`/degree row
    /// arithmetic lives in exactly one place.
    pub fn from_fn(
        max_degree: u32,
        k: usize,
        lambda: Vec<i64>,
        s0: StateId,
        mut f: impl FnMut(StateId, Option<u32>, u32) -> StateId,
    ) -> Self {
        assert!(k >= 1 && max_degree >= 1);
        assert_eq!(lambda.len(), k);
        let stride = (max_degree + 1) as usize * max_degree as usize;
        let mut delta = Vec::with_capacity(k * stride);
        for s in 0..k as StateId {
            for entry_idx in 0..=max_degree {
                let entry = entry_idx.checked_sub(1);
                for d in 1..=max_degree {
                    delta.push(f(s, entry, d));
                }
            }
        }
        Fsa { max_degree, delta, lambda, s0 }
    }

    pub fn num_states(&self) -> usize {
        self.lambda.len()
    }

    pub fn memory_bits(&self) -> u64 {
        bits_for_variants(self.num_states() as u64)
    }

    pub fn action(&self, s: StateId) -> Action {
        let l = self.lambda[s as usize];
        if l < 0 {
            Action::Stay
        } else {
            Action::Move(l as u32)
        }
    }

    /// Raw table read: next state in state `s` on entry port `entry`
    /// (`None` = the paper's `-1`) at a node of degree `d`.
    #[inline]
    pub fn transition(&self, s: StateId, entry: Option<u32>, d: u32) -> StateId {
        debug_assert!(entry.is_none_or(|p| p < self.max_degree));
        // The one entry-port encoding, shared with the config-index export.
        let entry_idx = Self::entry_index(entry);
        debug_assert!(d >= 1 && d <= self.max_degree);
        self.delta
            [s as usize * self.stride() + entry_idx * self.max_degree as usize + (d - 1) as usize]
    }

    /// Next state on observation `obs` in state `s`.
    #[inline]
    pub fn next(&self, s: StateId, obs: Obs) -> StateId {
        self.transition(s, obs.entry, obs.degree)
    }

    pub fn validate(&self) -> bool {
        let k = self.num_states() as StateId;
        self.delta.len() == self.num_states() * self.stride()
            && self.s0 < k
            && self.delta.iter().all(|&s| s < k)
    }

    /// Uniformly random automaton over `k` states for degrees up to
    /// `max_degree`.
    pub fn random<R: Rng>(k: usize, max_degree: u32, p_stay: f64, rng: &mut R) -> Self {
        assert!(k >= 1 && max_degree >= 1);
        // Draw order (delta, lambda, s0) is part of the seeded-experiment
        // contract: keep it even though the table is now filled flat.
        let stride = (max_degree + 1) as usize * max_degree as usize;
        let draws: Vec<StateId> = (0..k * stride).map(|_| rng.gen_range(0..k) as StateId).collect();
        let lambda = (0..k)
            .map(|_| if rng.gen_bool(p_stay) { -1 } else { rng.gen_range(0..max_degree) as i64 })
            .collect();
        let s0 = rng.gen_range(0..k) as StateId;
        let mut next = draws.into_iter();
        Fsa::from_fn(max_degree, k, lambda, s0, |_, _, _| next.next().expect("table-sized draw"))
    }

    /// The basic-walk automaton (§2.2) for degrees up to `max_degree`: a
    /// natural, structured victim for the lower-bound adversaries. One state
    /// per possible exit port.
    pub fn basic_walk(max_degree: u32) -> Self {
        // State s (0 ≤ s < max_degree) means "I exited by port s". On
        // entering by port i with degree d, exit by (i+1) mod d; a first
        // activation (entry None) behaves like entry d-1 so the walk starts
        // at port 0, and entries beyond the degree are clamped.
        let k = max_degree as usize;
        let lambda = (0..k).map(|s| s as i64).collect();
        Fsa::from_fn(max_degree, k, lambda, 0, |_s, entry, d| {
            let i = entry.unwrap_or(d - 1).min(d - 1);
            ((i + 1) % d) as StateId
        })
    }

    /// Instantiate as a runnable [`Agent`] borrowing this automaton — no
    /// copy of the transition table is made.
    pub fn runner(&self) -> FsaRunner<'_> {
        self.runner_from(self.s0)
    }

    /// An *owning* runner, for holders that cannot carry the borrow (e.g.
    /// the sweep trace cache stores recorders next to the instance that
    /// owns the automaton). Clones the table once; prefer [`Fsa::runner`]
    /// wherever a lifetime is available.
    pub fn runner_owned(&self) -> OwnedFsaRunner {
        OwnedFsaRunner { state: self.s0, started: false, fsa: self.clone() }
    }

    /// A runner starting in an arbitrary state `s` instead of `s0` (the
    /// Theorem 4.3 tour analysis primes agents mid-run).
    pub fn runner_from(&self, s: StateId) -> FsaRunner<'_> {
        debug_assert!((s as usize) < self.num_states());
        FsaRunner { fsa: self, state: s, started: false }
    }

    /// Dense index of the entry-port component of the input alphabet:
    /// `None` (the paper's `-1`) is 0, port `p` is `p + 1`. This is the
    /// same encoding the transition table uses internally; it is exported
    /// so product constructions (the exact decider's configuration graph)
    /// can index per-agent configurations without re-inventing the
    /// arithmetic.
    #[inline]
    pub const fn entry_index(entry: Option<u32>) -> usize {
        match entry {
            None => 0,
            Some(p) => p as usize + 1,
        }
    }

    /// Size of this automaton's *configuration space* on a substrate of
    /// `nodes` nodes: one configuration per `(state, node, entry)` triple,
    /// with `entry ∈ {-1} ∪ {0, …, max_degree − 1}`. The exact decider's
    /// visited sets are dense arrays of exactly this length.
    pub fn num_configs(&self, nodes: usize) -> usize {
        self.num_states() * nodes * (self.max_degree as usize + 1)
    }

    /// Dense index of the configuration `(s, node, entry)` within
    /// [`Fsa::num_configs`]`(nodes)`. Row-major in (state, node, entry),
    /// so iterating entries of one (state, node) block is contiguous.
    #[inline]
    pub fn config_index(&self, s: StateId, node: u32, entry: Option<u32>, nodes: usize) -> usize {
        debug_assert!((node as usize) < nodes);
        let width = self.max_degree as usize + 1;
        (s as usize * nodes + node as usize) * width + Self::entry_index(entry)
    }

    /// Extends a line automaton to trees of maximum degree `max_degree`:
    /// transitions at fatter nodes reuse the degree-2 row (a total,
    /// deterministic — hence legal — extension; the output's `mod d` rule
    /// already handles larger degrees). Used to hand line-compiled agents
    /// (e.g. the capped `prime` protocol) to the Theorem 4.3 adversary.
    pub fn from_line_extended(line: &crate::line_fsa::LineFsa, max_degree: u32) -> Self {
        assert!(max_degree >= 2);
        let k = line.num_states();
        Fsa::from_fn(max_degree, k, line.lambda.clone(), line.s0, |s, _entry, d| {
            line.next(s, d.min(2))
        })
    }
}

/// Runtime wrapper executing an [`Fsa`] under the [`Agent`] trait.
///
/// Borrows the automaton: cloning the runner copies only the (state,
/// started) pair, never the transition table.
#[derive(Debug, Clone)]
pub struct FsaRunner<'a> {
    fsa: &'a Fsa,
    state: StateId,
    started: bool,
}

impl FsaRunner<'_> {
    pub fn state(&self) -> StateId {
        self.state
    }
}

/// The shared step rule of both runner flavors: first activation emits the
/// current state's action, later ones transition on the observation first.
#[inline]
fn fsa_step(fsa: &Fsa, state: &mut StateId, started: &mut bool, obs: Obs) -> Action {
    if !*started {
        *started = true;
        return fsa.action(*state);
    }
    *state = fsa.next(*state, obs);
    fsa.action(*state)
}

impl Agent for FsaRunner<'_> {
    fn act(&mut self, obs: Obs) -> Action {
        fsa_step(self.fsa, &mut self.state, &mut self.started, obs)
    }

    fn memory_bits(&self) -> u64 {
        self.fsa.memory_bits()
    }

    fn name(&self) -> &'static str {
        "fsa"
    }
}

/// Runtime wrapper owning its [`Fsa`] — same behavior as [`FsaRunner`],
/// for contexts where borrowing the automaton is impossible.
#[derive(Debug, Clone)]
pub struct OwnedFsaRunner {
    fsa: Fsa,
    state: StateId,
    started: bool,
}

impl OwnedFsaRunner {
    pub fn state(&self) -> StateId {
        self.state
    }
}

impl Agent for OwnedFsaRunner {
    fn act(&mut self, obs: Obs) -> Action {
        fsa_step(&self.fsa, &mut self.state, &mut self.started, obs)
    }

    fn memory_bits(&self) -> u64 {
        self.fsa.memory_bits()
    }

    fn name(&self) -> &'static str {
        "fsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn random_is_valid() {
        let mut rng = StepRng::new(7, 13);
        for k in [1usize, 3, 9] {
            let f = Fsa::random(k, 3, 0.25, &mut rng);
            assert!(f.validate(), "k={k}");
        }
    }

    #[test]
    fn basic_walk_automaton_walks() {
        let f = Fsa::basic_walk(3);
        assert!(f.validate());
        let mut r = f.runner();
        // First action: exit port 0 (state 0).
        assert_eq!(r.act(Obs::start(3)), Action::Move(0));
        // Entered a degree-3 node by port 2: exit (2+1)%3 = 0.
        assert_eq!(r.act(Obs { entry: Some(2), degree: 3 }), Action::Move(0));
        // Entered a degree-2 node by port 0: exit 1.
        assert_eq!(r.act(Obs { entry: Some(0), degree: 2 }), Action::Move(1));
        // Entered a leaf by port 0: exit (0+1)%1 = 0.
        assert_eq!(r.act(Obs { entry: Some(0), degree: 1 }), Action::Move(0));
    }

    /// Pins the full basic-walk transition table for every max degree the
    /// Theorem 4.3 harnesses use, guarding the clamp/`entry_idx` arithmetic
    /// that used to be duplicated across constructors.
    #[test]
    fn basic_walk_table_is_pinned_for_degrees_1_to_4() {
        for max_degree in 1..=4u32 {
            let f = Fsa::basic_walk(max_degree);
            assert!(f.validate(), "max_degree={max_degree}");
            for s in 0..f.num_states() as StateId {
                for d in 1..=max_degree {
                    // First activation behaves like entering by port d-1:
                    // the walk starts at port (d-1+1) mod d = 0.
                    assert_eq!(f.transition(s, None, d), 0, "start row, d={d}");
                    for i in 0..max_degree {
                        let expect = ((i.min(d - 1) + 1) % d) as StateId;
                        assert_eq!(
                            f.transition(s, Some(i), d),
                            expect,
                            "max_degree={max_degree} s={s} i={i} d={d}"
                        );
                    }
                }
            }
        }
    }

    /// Pins the line-extension table: degree-1 inputs read the line's
    /// degree-1 row, every fatter degree reads the degree-2 row, and the
    /// entry port never matters.
    #[test]
    fn line_extension_table_is_pinned_for_degrees_1_to_4() {
        use crate::line_fsa::LineFsa;
        let line = LineFsa::from_rows(vec![[1, 0], [0, 1], [1, 2]], vec![0, 1, -1], 0);
        for max_degree in 2..=4u32 {
            let ext = Fsa::from_line_extended(&line, max_degree);
            assert!(ext.validate(), "max_degree={max_degree}");
            for s in 0..line.num_states() as StateId {
                for d in 1..=max_degree {
                    let expect = line.next(s, d.min(2));
                    assert_eq!(ext.transition(s, None, d), expect);
                    for i in 0..max_degree {
                        assert_eq!(
                            ext.transition(s, Some(i), d),
                            expect,
                            "max_degree={max_degree} s={s} i={i} d={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn config_indices_are_a_bijection() {
        // The exported product-construction indexing must cover
        // 0..num_configs exactly once.
        let f = Fsa::basic_walk(3);
        let nodes = 5usize;
        let mut seen = vec![false; f.num_configs(nodes)];
        for s in 0..f.num_states() as StateId {
            for node in 0..nodes as u32 {
                for entry in std::iter::once(None).chain((0..f.max_degree).map(Some)) {
                    let i = f.config_index(s, node, entry, nodes);
                    assert!(!seen[i], "collision at ({s}, {node}, {entry:?})");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn memory_is_log_states() {
        let f = Fsa::basic_walk(3);
        assert_eq!(f.memory_bits(), 2); // 3 states
    }

    #[test]
    fn runner_from_starts_in_the_given_state() {
        let f = Fsa::basic_walk(3);
        let mut r = f.runner_from(2);
        assert_eq!(r.state(), 2);
        // First action is λ(2) = move by port 2.
        assert_eq!(r.act(Obs::start(3)), Action::Move(2));
    }

    #[test]
    fn line_extension_preserves_line_behavior() {
        use crate::line_fsa::LineFsa;
        let line = LineFsa::shuttle();
        let ext = Fsa::from_line_extended(&line, 3);
        assert!(ext.validate());
        assert_eq!(ext.num_states(), line.num_states());
        // On degree-1/2 observations the two runners agree.
        let mut a = line.runner();
        let mut b = ext.runner();
        let obs_seq = [
            Obs::start(2),
            Obs { entry: Some(0), degree: 2 },
            Obs { entry: Some(1), degree: 2 },
            Obs { entry: Some(0), degree: 1 },
            Obs { entry: Some(1), degree: 2 },
        ];
        for obs in obs_seq {
            assert_eq!(a.act(obs), b.act(obs));
        }
    }
}
