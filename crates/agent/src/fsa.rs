//! General explicit finite automata for trees of bounded maximum degree —
//! the model used by the Theorem 4.3 adversary (trees of maximum degree 3,
//! arbitrary port labelings, so the full input symbol `(i, d)` matters).

use crate::meter::bits_for_variants;
use crate::model::{Action, Agent, Obs};
use rand::Rng;

pub use crate::line_fsa::StateId;

/// A finite-state agent for trees with degrees `1..=max_degree`.
///
/// Transitions are indexed by the paper's input symbol `(i, d)`: entry port
/// `i ∈ {-1, 0, …, max_degree-1}` (−1 encoded as index 0) and degree
/// `d ∈ {1, …, max_degree}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fsa {
    pub max_degree: u32,
    /// `delta[s][entry_idx][d-1]` with `entry_idx = 0` for `i = -1`, else
    /// `i + 1`.
    pub delta: Vec<Vec<Vec<StateId>>>,
    /// `lambda[s]`: `-1` = null move, else leave by `lambda[s] mod d`.
    pub lambda: Vec<i64>,
    pub s0: StateId,
}

impl Fsa {
    pub fn num_states(&self) -> usize {
        self.delta.len()
    }

    pub fn memory_bits(&self) -> u64 {
        bits_for_variants(self.num_states() as u64)
    }

    pub fn action(&self, s: StateId) -> Action {
        let l = self.lambda[s as usize];
        if l < 0 {
            Action::Stay
        } else {
            Action::Move(l as u32)
        }
    }

    /// Next state on observation `obs` in state `s`.
    pub fn next(&self, s: StateId, obs: Obs) -> StateId {
        let entry_idx = match obs.entry {
            None => 0,
            Some(p) => {
                debug_assert!(p < self.max_degree);
                (p + 1) as usize
            }
        };
        debug_assert!(obs.degree >= 1 && obs.degree <= self.max_degree);
        self.delta[s as usize][entry_idx][(obs.degree - 1) as usize]
    }

    pub fn validate(&self) -> bool {
        let k = self.num_states() as StateId;
        self.lambda.len() == self.num_states()
            && self.s0 < k
            && self.delta.iter().all(|by_entry| {
                by_entry.len() == (self.max_degree + 1) as usize
                    && by_entry.iter().all(|by_deg| {
                        by_deg.len() == self.max_degree as usize && by_deg.iter().all(|&s| s < k)
                    })
            })
    }

    /// Uniformly random automaton over `k` states for degrees up to
    /// `max_degree`.
    pub fn random<R: Rng>(k: usize, max_degree: u32, p_stay: f64, rng: &mut R) -> Self {
        assert!(k >= 1 && max_degree >= 1);
        let delta = (0..k)
            .map(|_| {
                (0..=max_degree)
                    .map(|_| (0..max_degree).map(|_| rng.gen_range(0..k) as StateId).collect())
                    .collect()
            })
            .collect();
        let lambda = (0..k)
            .map(|_| if rng.gen_bool(p_stay) { -1 } else { rng.gen_range(0..max_degree) as i64 })
            .collect();
        Fsa { max_degree, delta, lambda, s0: rng.gen_range(0..k) as StateId }
    }

    /// The basic-walk automaton (§2.2) for degrees up to `max_degree`: a
    /// natural, structured victim for the lower-bound adversaries. One state
    /// per possible exit port.
    pub fn basic_walk(max_degree: u32) -> Self {
        // State s (0 ≤ s < max_degree) means "I exited by port s". On
        // entering by port i with degree d, exit by (i+1) mod d.
        let k = max_degree as usize;
        let delta: Vec<Vec<Vec<StateId>>> = (0..k)
            .map(|_s| {
                (0..=max_degree)
                    .map(|entry_idx| {
                        (1..=max_degree)
                            .map(|d| {
                                let i = if entry_idx == 0 { d - 1 } else { entry_idx - 1 };
                                // exit (i+1) mod d; clamp entry beyond degree.
                                let i = i.min(d - 1);
                                ((i + 1) % d) as StateId
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let lambda = (0..k).map(|s| s as i64).collect();
        Fsa { max_degree, delta, lambda, s0: 0 }
    }

    pub fn runner(&self) -> FsaRunner {
        FsaRunner { fsa: self.clone(), state: self.s0, started: false }
    }

    /// Extends a line automaton to trees of maximum degree `max_degree`:
    /// transitions at fatter nodes reuse the degree-2 row (a total,
    /// deterministic — hence legal — extension; the output's `mod d` rule
    /// already handles larger degrees). Used to hand line-compiled agents
    /// (e.g. the capped `prime` protocol) to the Theorem 4.3 adversary.
    pub fn from_line_extended(line: &crate::line_fsa::LineFsa, max_degree: u32) -> Self {
        assert!(max_degree >= 2);
        let k = line.num_states();
        let delta = (0..k)
            .map(|s| {
                (0..=max_degree)
                    .map(|_entry| {
                        (1..=max_degree)
                            .map(|d| line.delta[s][if d == 1 { 0 } else { 1 }])
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Fsa { max_degree, delta, lambda: line.lambda.clone(), s0: line.s0 }
    }
}

/// Runtime wrapper executing an [`Fsa`] under the [`Agent`] trait.
#[derive(Debug, Clone)]
pub struct FsaRunner {
    fsa: Fsa,
    state: StateId,
    started: bool,
}

impl FsaRunner {
    pub fn state(&self) -> StateId {
        self.state
    }
}

impl Agent for FsaRunner {
    fn act(&mut self, obs: Obs) -> Action {
        if !self.started {
            self.started = true;
            return self.fsa.action(self.state);
        }
        self.state = self.fsa.next(self.state, obs);
        self.fsa.action(self.state)
    }

    fn memory_bits(&self) -> u64 {
        self.fsa.memory_bits()
    }

    fn name(&self) -> &'static str {
        "fsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn random_is_valid() {
        let mut rng = StepRng::new(7, 13);
        for k in [1usize, 3, 9] {
            let f = Fsa::random(k, 3, 0.25, &mut rng);
            assert!(f.validate(), "k={k}");
        }
    }

    #[test]
    fn basic_walk_automaton_walks() {
        let f = Fsa::basic_walk(3);
        assert!(f.validate());
        let mut r = f.runner();
        // First action: exit port 0 (state 0).
        assert_eq!(r.act(Obs::start(3)), Action::Move(0));
        // Entered a degree-3 node by port 2: exit (2+1)%3 = 0.
        assert_eq!(r.act(Obs { entry: Some(2), degree: 3 }), Action::Move(0));
        // Entered a degree-2 node by port 0: exit 1.
        assert_eq!(r.act(Obs { entry: Some(0), degree: 2 }), Action::Move(1));
        // Entered a leaf by port 0: exit (0+1)%1 = 0.
        assert_eq!(r.act(Obs { entry: Some(0), degree: 1 }), Action::Move(0));
    }

    #[test]
    fn memory_is_log_states() {
        let f = Fsa::basic_walk(3);
        assert_eq!(f.memory_bits(), 2); // 3 states
    }

    #[test]
    fn line_extension_preserves_line_behavior() {
        use crate::line_fsa::LineFsa;
        let line = LineFsa::shuttle();
        let ext = Fsa::from_line_extended(&line, 3);
        assert!(ext.validate());
        assert_eq!(ext.num_states(), line.num_states());
        // On degree-1/2 observations the two runners agree.
        let mut a = line.runner();
        let mut b = ext.runner();
        let obs_seq = [
            Obs::start(2),
            Obs { entry: Some(0), degree: 2 },
            Obs { entry: Some(1), degree: 2 },
            Obs { entry: Some(0), degree: 1 },
            Obs { entry: Some(1), degree: 2 },
        ];
        for obs in obs_seq {
            assert_eq!(a.act(obs), b.act(obs));
        }
    }
}
