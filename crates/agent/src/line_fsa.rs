//! Explicit finite automata for **properly 2-edge-colored lines** — the
//! restricted model of the paper's lower-bound proofs (Theorems 3.1 and 4.2).
//!
//! On an edge-colored line, the port by which an agent leaves an edge equals
//! the port by which it enters the next node, so the transition function
//! needs only the degree: `π : S × {1, 2} → S` (§4.2). The output function
//! `λ : S → ℤ` maps to `-1` (stay) or a port taken `mod d`.

use crate::meter::bits_for_variants;
use crate::model::{Action, Agent, Obs};
use rand::Rng;

/// State index.
pub type StateId = u32;

/// A finite-state agent for edge-colored lines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LineFsa {
    /// `delta[s][d-1]`: next state on entering (or idling at) a node of
    /// degree `d ∈ {1, 2}` in state `s`.
    pub delta: Vec<[StateId; 2]>,
    /// `lambda[s]`: `-1` = null move, else leave by `lambda[s] mod d`.
    pub lambda: Vec<i64>,
    /// Initial state.
    pub s0: StateId,
}

impl LineFsa {
    /// Number of states `K`.
    pub fn num_states(&self) -> usize {
        self.delta.len()
    }

    /// Memory in bits: `ceil(log2 K)` (§2.1).
    pub fn memory_bits(&self) -> u64 {
        bits_for_variants(self.num_states() as u64)
    }

    /// The degree-2 restriction `π'(s) = π(s, 2)` whose transition digraph
    /// drives the Theorem 4.2 analysis.
    pub fn pi_prime(&self, s: StateId) -> StateId {
        self.delta[s as usize][1]
    }

    /// The action of state `s`.
    pub fn action(&self, s: StateId) -> Action {
        let l = self.lambda[s as usize];
        if l < 0 {
            Action::Stay
        } else {
            Action::Move(l as u32)
        }
    }

    /// Validates internal consistency (state indices in range).
    pub fn validate(&self) -> bool {
        let k = self.num_states() as StateId;
        self.lambda.len() == self.num_states()
            && self.s0 < k
            && self.delta.iter().all(|row| row.iter().all(|&s| s < k))
    }

    /// A uniformly random automaton with `k` states. `p_stay` is the
    /// probability that a state's action is a null move. Used to stress the
    /// lower-bound adversaries over the whole automaton space.
    pub fn random<R: Rng>(k: usize, p_stay: f64, rng: &mut R) -> Self {
        assert!(k >= 1);
        let delta = (0..k)
            .map(|_| [rng.gen_range(0..k) as StateId, rng.gen_range(0..k) as StateId])
            .collect();
        let lambda = (0..k)
            .map(|_| if rng.gen_bool(p_stay) { -1 } else { rng.gen_range(0..2) as i64 })
            .collect();
        LineFsa { delta, lambda, s0: rng.gen_range(0..k) as StateId }
    }

    /// The always-forward walker: 2 states are enough to shuttle along a
    /// line (bounce at leaves). A standard sanity-check agent.
    pub fn shuttle() -> Self {
        // State 0: move by port 0; state 1: move by port 1. On an
        // edge-colored line, leaving by color c means entering by color c;
        // to keep going in the same direction the next exit must be the
        // other color: alternate states. At a leaf (degree 1) the single
        // port is 0 ⇒ any move bounces.
        LineFsa { delta: vec![[1, 1], [0, 0]], lambda: vec![0, 1], s0: 0 }
    }

    /// Instantiate as a runnable [`Agent`].
    pub fn runner(&self) -> LineFsaRunner {
        LineFsaRunner { fsa: self.clone(), state: self.s0, started: false }
    }
}

/// Runtime wrapper executing a [`LineFsa`] under the [`Agent`] trait.
#[derive(Debug, Clone)]
pub struct LineFsaRunner {
    fsa: LineFsa,
    state: StateId,
    started: bool,
}

impl LineFsaRunner {
    /// The current state (for the lower-bound instrumentations, which need
    /// to observe the state an agent "reaches a node in").
    pub fn state(&self) -> StateId {
        self.state
    }
}

impl Agent for LineFsaRunner {
    fn act(&mut self, obs: Obs) -> Action {
        debug_assert!(obs.degree >= 1 && obs.degree <= 2, "line degrees only");
        if !self.started {
            // λ(s0) is applied before any input is read (§2.1).
            self.started = true;
            return self.fsa.action(self.state);
        }
        self.state = self.fsa.delta[self.state as usize][(obs.degree - 1) as usize];
        self.fsa.action(self.state)
    }

    fn memory_bits(&self) -> u64 {
        self.fsa.memory_bits()
    }

    fn name(&self) -> &'static str {
        "line-fsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuttle_is_valid() {
        let f = LineFsa::shuttle();
        assert!(f.validate());
        assert_eq!(f.num_states(), 2);
        assert_eq!(f.memory_bits(), 1);
    }

    #[test]
    fn random_fsas_are_valid() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 101);
        for k in [1usize, 2, 5, 16] {
            let f = LineFsa::random(k, 0.3, &mut rng);
            assert!(f.validate());
            assert_eq!(f.num_states(), k);
        }
    }

    #[test]
    fn runner_first_action_is_lambda_s0() {
        let f = LineFsa { delta: vec![[1, 1], [1, 1]], lambda: vec![-1, 0], s0: 0 };
        let mut r = f.runner();
        // First activation: λ(s0) = -1 ⇒ stay, no transition.
        assert_eq!(r.act(Obs::start(2)), Action::Stay);
        // Next round: input (-1, 2) ⇒ state 1 ⇒ move 0.
        assert_eq!(r.act(Obs { entry: None, degree: 2 }), Action::Move(0));
        assert_eq!(r.state(), 1);
    }

    #[test]
    fn pi_prime_reads_degree2_column() {
        let f = LineFsa { delta: vec![[0, 1], [1, 0]], lambda: vec![0, 0], s0: 0 };
        assert_eq!(f.pi_prime(0), 1);
        assert_eq!(f.pi_prime(1), 0);
    }
}
