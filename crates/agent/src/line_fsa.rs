//! Explicit finite automata for **properly 2-edge-colored lines** — the
//! restricted model of the paper's lower-bound proofs (Theorems 3.1 and 4.2).
//!
//! On an edge-colored line, the port by which an agent leaves an edge equals
//! the port by which it enters the next node, so the transition function
//! needs only the degree: `π : S × {1, 2} → S` (§4.2). The output function
//! `λ : S → ℤ` maps to `-1` (stay) or a port taken `mod d`.

use crate::meter::bits_for_variants;
use crate::model::{Action, Agent, Obs};
use rand::Rng;

/// State index.
pub type StateId = u32;

/// A finite-state agent for edge-colored lines.
///
/// The transition table is a single dense row-major array (stride 2): state
/// `s`'s row occupies `delta[2s..2s+2]`, indexed by `d - 1`. Construct with
/// [`LineFsa::from_rows`] or [`LineFsa::from_fn`]; read with
/// [`LineFsa::next`] / [`LineFsa::pi_prime`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LineFsa {
    /// `delta[2s + (d-1)]`: next state on entering (or idling at) a node of
    /// degree `d ∈ {1, 2}` in state `s`.
    delta: Vec<StateId>,
    /// `lambda[s]`: `-1` = null move, else leave by `lambda[s] mod d`.
    pub lambda: Vec<i64>,
    /// Initial state.
    pub s0: StateId,
}

impl LineFsa {
    /// Builds the automaton from per-state `[next_on_d1, next_on_d2]` rows.
    pub fn from_rows(rows: Vec<[StateId; 2]>, lambda: Vec<i64>, s0: StateId) -> Self {
        let delta = rows.into_iter().flatten().collect();
        LineFsa { delta, lambda, s0 }
    }

    /// Builds the automaton from an indexed transition function
    /// `f(state, degree)` over `degree ∈ {1, 2}`.
    pub fn from_fn(
        k: usize,
        lambda: Vec<i64>,
        s0: StateId,
        mut f: impl FnMut(StateId, u32) -> StateId,
    ) -> Self {
        let mut delta = Vec::with_capacity(2 * k);
        for s in 0..k as StateId {
            for d in 1..=2u32 {
                delta.push(f(s, d));
            }
        }
        LineFsa { delta, lambda, s0 }
    }

    /// Number of states `K`.
    pub fn num_states(&self) -> usize {
        self.delta.len() / 2
    }

    /// Memory in bits: `ceil(log2 K)` (§2.1).
    pub fn memory_bits(&self) -> u64 {
        bits_for_variants(self.num_states() as u64)
    }

    /// Next state on entering (or idling at) a node of degree `d ∈ {1, 2}`.
    #[inline]
    pub fn next(&self, s: StateId, degree: u32) -> StateId {
        debug_assert!((1..=2).contains(&degree), "line degrees only");
        self.delta[2 * s as usize + (degree - 1) as usize]
    }

    /// The degree-2 restriction `π'(s) = π(s, 2)` whose transition digraph
    /// drives the Theorem 4.2 analysis.
    #[inline]
    pub fn pi_prime(&self, s: StateId) -> StateId {
        self.delta[2 * s as usize + 1]
    }

    /// The action of state `s`.
    pub fn action(&self, s: StateId) -> Action {
        let l = self.lambda[s as usize];
        if l < 0 {
            Action::Stay
        } else {
            Action::Move(l as u32)
        }
    }

    /// Validates internal consistency (state indices in range).
    pub fn validate(&self) -> bool {
        let k = self.num_states() as StateId;
        self.delta.len() == 2 * self.num_states()
            && self.lambda.len() == self.num_states()
            && self.s0 < k
            && self.delta.iter().all(|&s| s < k)
    }

    /// A uniformly random automaton with `k` states. `p_stay` is the
    /// probability that a state's action is a null move. Used to stress the
    /// lower-bound adversaries over the whole automaton space.
    pub fn random<R: Rng>(k: usize, p_stay: f64, rng: &mut R) -> Self {
        assert!(k >= 1);
        // Draw order (delta, lambda, s0) is part of the seeded-experiment
        // contract: keep it even though the table is now filled flat.
        let delta = (0..2 * k).map(|_| rng.gen_range(0..k) as StateId).collect();
        let lambda = (0..k)
            .map(|_| if rng.gen_bool(p_stay) { -1 } else { rng.gen_range(0..2) as i64 })
            .collect();
        LineFsa { delta, lambda, s0: rng.gen_range(0..k) as StateId }
    }

    /// The always-forward walker: 2 states are enough to shuttle along a
    /// line (bounce at leaves). A standard sanity-check agent.
    pub fn shuttle() -> Self {
        // State 0: move by port 0; state 1: move by port 1. On an
        // edge-colored line, leaving by color c means entering by color c;
        // to keep going in the same direction the next exit must be the
        // other color: alternate states. At a leaf (degree 1) the single
        // port is 0 ⇒ any move bounces.
        LineFsa::from_rows(vec![[1, 1], [0, 0]], vec![0, 1], 0)
    }

    /// Instantiate as a runnable [`Agent`] borrowing this automaton — no
    /// copy of the transition table is made.
    pub fn runner(&self) -> LineFsaRunner<'_> {
        LineFsaRunner { fsa: self, state: self.s0, started: false }
    }
}

/// Runtime wrapper executing a [`LineFsa`] under the [`Agent`] trait.
///
/// Borrows the automaton: cloning the runner restarts nothing and copies
/// nothing but the (state, started) pair.
#[derive(Debug, Clone)]
pub struct LineFsaRunner<'a> {
    fsa: &'a LineFsa,
    state: StateId,
    started: bool,
}

impl LineFsaRunner<'_> {
    /// The current state (for the lower-bound instrumentations, which need
    /// to observe the state an agent "reaches a node in").
    pub fn state(&self) -> StateId {
        self.state
    }
}

impl Agent for LineFsaRunner<'_> {
    fn act(&mut self, obs: Obs) -> Action {
        debug_assert!(obs.degree >= 1 && obs.degree <= 2, "line degrees only");
        if !self.started {
            // λ(s0) is applied before any input is read (§2.1).
            self.started = true;
            return self.fsa.action(self.state);
        }
        self.state = self.fsa.next(self.state, obs.degree);
        self.fsa.action(self.state)
    }

    fn memory_bits(&self) -> u64 {
        self.fsa.memory_bits()
    }

    fn name(&self) -> &'static str {
        "line-fsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuttle_is_valid() {
        let f = LineFsa::shuttle();
        assert!(f.validate());
        assert_eq!(f.num_states(), 2);
        assert_eq!(f.memory_bits(), 1);
    }

    #[test]
    fn random_fsas_are_valid() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 101);
        for k in [1usize, 2, 5, 16] {
            let f = LineFsa::random(k, 0.3, &mut rng);
            assert!(f.validate());
            assert_eq!(f.num_states(), k);
        }
    }

    #[test]
    fn runner_first_action_is_lambda_s0() {
        let f = LineFsa::from_rows(vec![[1, 1], [1, 1]], vec![-1, 0], 0);
        let mut r = f.runner();
        // First activation: λ(s0) = -1 ⇒ stay, no transition.
        assert_eq!(r.act(Obs::start(2)), Action::Stay);
        // Next round: input (-1, 2) ⇒ state 1 ⇒ move 0.
        assert_eq!(r.act(Obs { entry: None, degree: 2 }), Action::Move(0));
        assert_eq!(r.state(), 1);
    }

    #[test]
    fn pi_prime_reads_degree2_column() {
        let f = LineFsa::from_rows(vec![[0, 1], [1, 0]], vec![0, 0], 0);
        assert_eq!(f.pi_prime(0), 1);
        assert_eq!(f.pi_prime(1), 0);
    }

    #[test]
    fn from_fn_matches_from_rows() {
        let rows = vec![[1, 0], [0, 1], [2, 2]];
        let a = LineFsa::from_rows(rows.clone(), vec![0, 1, -1], 2);
        let b = LineFsa::from_fn(3, vec![0, 1, -1], 2, |s, d| rows[s as usize][(d - 1) as usize]);
        assert_eq!(a, b);
        for s in 0..3 {
            for d in 1..=2 {
                assert_eq!(a.next(s, d), rows[s as usize][(d - 1) as usize]);
            }
        }
    }
}
