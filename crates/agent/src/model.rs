//! The mobile-agent model of §2.1.
//!
//! An agent is an abstract state machine `A = (S, π, λ, s0)`. Each round it
//! receives the input symbol `(i, d)` — the port `i` through which it entered
//! the current node (`-1` after a null move or on first activation) and the
//! node's degree `d` — and answers with an action: a null move, or "leave by
//! port `λ(s') mod d`".
//!
//! Two representations coexist:
//! * [`Agent`] — a procedural trait for algorithmic agents whose memory is
//!   *measured* by [`crate::meter`];
//! * explicit finite automata ([`crate::line_fsa::LineFsa`],
//!   [`crate::fsa::Fsa`]) — used by the lower-bound adversaries and produced
//!   by the [`crate::compile`] state-memoizing compiler.

use rvz_trees::Port;

/// The observation an agent receives at the start of a round: the paper's
/// input symbol `(i, d)` with `i = -1` encoded as `entry: None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Obs {
    /// Port through which the agent entered its current node on its previous
    /// action; `None` if the previous action was a null move or if this is
    /// the agent's first activation.
    pub entry: Option<Port>,
    /// Degree of the current node.
    pub degree: Port,
}

impl Obs {
    /// First-activation observation at a node of degree `d`.
    pub fn start(degree: Port) -> Self {
        Obs { entry: None, degree }
    }
}

/// An agent's action for the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Null move: remain at the current node (the paper's `λ(s) = -1`).
    Stay,
    /// Leave by port `raw mod degree` (the paper's `λ(s) ≥ 0`; the modulo is
    /// applied by the simulator, as in the model).
    Move(Port),
}

impl Action {
    /// The effective port for a node of degree `d`, if this is a move.
    pub fn port(self, degree: Port) -> Option<Port> {
        match self {
            Action::Stay => None,
            Action::Move(raw) => {
                assert!(degree > 0, "cannot move from an isolated node");
                Some(raw % degree)
            }
        }
    }
}

/// A deterministic mobile agent. The simulator calls [`Agent::act`] exactly
/// once per round in which the agent is active, passing the observation for
/// its current node.
pub trait Agent {
    /// Decide this round's action.
    fn act(&mut self, obs: Obs) -> Action;

    /// Measured memory in bits: the number of bits needed to encode every
    /// state this agent instance has reached so far (see docs/design-notes.md §D2).
    /// Implementations track the maxima of their counters.
    fn memory_bits(&self) -> u64;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str {
        "agent"
    }

    /// `true` once the agent has entered an *absorbing* state: every future
    /// [`Agent::act`] call will return [`Action::Stay`] and leave all
    /// observable state — including the memory meter — unchanged. The
    /// trace-replay machinery (`rvz_sim::trace`) uses this to close a
    /// recorded trajectory with an O(1) fixed-point tail instead of
    /// stepping a parked agent to the round budget. Conservative default:
    /// `false` (an agent that never reports halting is merely recorded
    /// further, never misreplayed).
    fn halted(&self) -> bool {
        false
    }
}

/// The step result of a sub-procedure inside a hierarchical agent.
///
/// `Done` means the sub-procedure has finished *without consuming the
/// round*: the parent must immediately consult the next phase. This is how
/// the Theorem 4.1 agent chains `Explo-bis → Synchro → Figure-2` without
/// wasting rounds, matching the paper's seamless phase transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Act this round: move by (raw) port.
    Move(Port),
    /// Act this round: stay put.
    Stay,
    /// The sub-procedure is complete; no action consumed.
    Done,
}

/// A composable sub-procedure (phase) of a hierarchical agent.
pub trait SubAgent {
    /// Advance by one observation. Returning [`Step::Done`] yields control
    /// to the parent within the same round.
    fn step(&mut self, obs: Obs) -> Step;
}

/// Basic-walk port arithmetic (§2.2): the exit port of the *basic walk*
/// given the entry port (`None` ⇒ the walk is starting ⇒ exit 0).
#[inline]
pub fn bw_exit(entry: Option<Port>, degree: Port) -> Port {
    match entry {
        None => 0,
        Some(i) => (i + 1) % degree,
    }
}

/// Counter-basic-walk exit port (§4.1): `(i - 1) mod d`; with `entry = None`
/// (standalone reversal of a closed tour) this is `d - 1`, the port by which
/// the forward tour made its final entry.
#[inline]
pub fn cbw_exit(entry: Option<Port>, degree: Port) -> Port {
    match entry {
        None => degree - 1,
        Some(i) => (i + degree - 1) % degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_port_modulo() {
        assert_eq!(Action::Move(7).port(3), Some(1));
        assert_eq!(Action::Move(2).port(3), Some(2));
        assert_eq!(Action::Stay.port(3), None);
    }

    #[test]
    fn bw_cbw_exits() {
        assert_eq!(bw_exit(None, 4), 0);
        assert_eq!(bw_exit(Some(3), 4), 0);
        assert_eq!(bw_exit(Some(1), 4), 2);
        assert_eq!(cbw_exit(None, 4), 3);
        assert_eq!(cbw_exit(Some(0), 4), 3);
        assert_eq!(cbw_exit(Some(2), 4), 1);
        // Degree 2 (pass-through): both walks take the other port.
        assert_eq!(bw_exit(Some(0), 2), 1);
        assert_eq!(cbw_exit(Some(0), 2), 1);
        assert_eq!(bw_exit(Some(1), 2), 0);
        assert_eq!(cbw_exit(Some(1), 2), 0);
    }

    #[test]
    fn bw_then_cbw_inverts() {
        // On any degree-d node: if the forward walk entered via i and exited
        // via (i+1), the reverse traversal enters via (i+1)'s far end and
        // must exit via i — which is cbw of the far-end entry. Checked at
        // the port-arithmetic level: cbw(bw(i)) walks back.
        for d in 1..6u32 {
            for i in 0..d {
                let fwd = bw_exit(Some(i), d);
                // Re-entering by the port we exited (turn-around situation)
                // then applying cbw yields the original entry port.
                assert_eq!(cbw_exit(Some(fwd), d), i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "isolated node")]
    fn move_from_isolated_node_panics() {
        let _ = Action::Move(0).port(0);
    }
}
