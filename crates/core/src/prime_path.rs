//! The `prime` protocol of Lemma 4.1: rendezvous of two identical **blind**
//! agents on a path with `O(log log m)` bits of memory.
//!
//! ```text
//! start in arbitrary direction;
//! move at speed 1 until reaching one extremity of the path;
//! p ← 2;
//! while no rendezvous do
//!     traverse the entire path twice, at speed 1/p;
//!     p ← smallest prime larger than p;
//! ```
//!
//! *Speed `1/s`* means idling `s − 1` rounds before each edge traversal. The
//! agents are blind: they only distinguish "the edge I came by" from "the
//! other edge" and detect extremities by their degree — port numbers are
//! never used (beyond the forced port 0 at a leaf). Rendezvous is guaranteed
//! whenever it is feasible (`m` odd, or `m` even and `a − 1 ≠ m − b`), at or
//! before iteration `primorial_index_bound(m²)` of the loop.
//!
//! The agent's persistent memory: the current prime `p`, an idle counter
//! `< p`, a one-bit pending direction, a 1-trip/2-trip flag and the phase —
//! `O(log p) = O(log log m)` bits, measured by [`PrimePathAgent::memory_bits`].

use crate::primes::next_prime;
use rvz_agent::meter::bits_for;
use rvz_agent::model::{Action, Agent, Obs};
use rvz_trees::Port;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Speed-1 run toward an extremity.
    Init,
    /// The prime loop.
    Running,
    /// Only reachable with a `cap`: the bounded variant `prime(i)` has
    /// exhausted its primes.
    Finished,
}

/// What happens when the prime index reaches the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CapMode {
    /// No cap: primes grow forever (the Lemma 4.1 protocol).
    Unbounded,
    /// `prime(i)`: stop and stay forever.
    Stop(u32),
    /// Wrap back to `p = 2` — a *bounded-memory* line agent capturing the
    /// protocol's behavior with `⌈log p_i⌉`-bit counters. This is the
    /// variant we compile to an explicit automaton and hand to the
    /// Theorem 3.1 / 4.2 adversaries (docs/design-notes.md §D7): it demonstrates,
    /// end to end, that capping the memory of the paper's own protocol
    /// makes it defeatable.
    Cycle(u32),
}

/// The Lemma 4.1 agent. With `cap = None` it runs the unbounded protocol;
/// `cap = Some(i)` gives the paper's `prime(i)` (stop after the `i`-th
/// prime), after which it stays put forever (when run standalone).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrimePathAgent {
    cap: CapMode,
    phase: Phase,
    /// Current prime `p`.
    p: u64,
    /// 1-based index of `p` among the primes.
    prime_idx: u32,
    /// Idle rounds spent before the pending edge traversal.
    idle_done: u64,
    /// Which of the two traversals of the current prime we are in (0 or 1).
    traversal: u8,
    /// Exit to use for the next move (blind: "the other edge").
    next_exit: Port,
    /// High-water mark of `p` (memory metering).
    max_p: u64,
}

impl PrimePathAgent {
    pub fn unbounded() -> Self {
        Self::with_cap(CapMode::Unbounded, 0)
    }

    /// The paper's `prime(i)`.
    pub fn bounded(i: u32) -> Self {
        Self::with_cap(CapMode::Stop(i), 0)
    }

    /// The bounded-memory variant: after the `i`-th prime, wrap back to
    /// `p = 2` and keep sweeping forever. A legitimate finite-state line
    /// agent — the input to [`rvz_agent::compile::compile_line_agent`] for
    /// the constructive gap demonstration.
    pub fn cycling(i: u32) -> Self {
        assert!(i >= 1);
        Self::with_cap(CapMode::Cycle(i), 0)
    }

    /// The protocol's "start in arbitrary direction": the direction is not
    /// the agent's to choose (it is blind), so the adversary — and our
    /// exhaustive tests — pick the initial exit port.
    pub fn with_start_port(start_port: Port) -> Self {
        Self::with_cap(CapMode::Unbounded, start_port)
    }

    fn with_cap(cap: CapMode, start_port: Port) -> Self {
        PrimePathAgent {
            cap,
            phase: Phase::Init,
            p: 2,
            prime_idx: 1,
            idle_done: 0,
            traversal: 0,
            next_exit: start_port,
            max_p: 2,
        }
    }

    /// The largest prime used so far.
    pub fn max_prime(&self) -> u64 {
        self.max_p
    }

    /// Has the bounded variant finished?
    pub fn finished(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Arrival bookkeeping. Returns `true` if the protocol just finished.
    fn on_arrival(&mut self, entry: Port, degree: Port) -> bool {
        // Blind next-direction rule: at an extremity turn around (the only
        // edge is port 0); inside, take the other edge.
        self.next_exit = if degree == 1 { 0 } else { 1 - entry };
        if degree != 1 {
            return false;
        }
        // Extremity reached.
        match self.phase {
            Phase::Init => {
                self.phase = Phase::Running;
                self.traversal = 0;
            }
            Phase::Running => {
                self.traversal += 1;
                if self.traversal == 2 {
                    self.traversal = 0;
                    match self.cap {
                        CapMode::Stop(i) if i == self.prime_idx => {
                            self.phase = Phase::Finished;
                            return true;
                        }
                        CapMode::Cycle(i) if i == self.prime_idx => {
                            self.p = 2;
                            self.prime_idx = 1;
                        }
                        _ => {
                            self.p = next_prime(self.p);
                            self.prime_idx += 1;
                            self.max_p = self.max_p.max(self.p);
                        }
                    }
                }
            }
            Phase::Finished => {}
        }
        false
    }
}

impl Agent for PrimePathAgent {
    fn act(&mut self, obs: Obs) -> Action {
        debug_assert!(obs.degree <= 2, "prime protocol runs on paths");
        if let Some(entry) = obs.entry {
            if self.on_arrival(entry, obs.degree) {
                return Action::Stay;
            }
        } else if self.phase == Phase::Init && obs.degree == 1 {
            // Starting at an extremity: the init run is already over.
            self.phase = Phase::Running;
            self.traversal = 0;
            self.next_exit = 0;
        }
        match self.phase {
            Phase::Init => Action::Move(self.next_exit),
            Phase::Running => {
                if self.idle_done + 1 < self.p {
                    self.idle_done += 1;
                    Action::Stay
                } else {
                    self.idle_done = 0;
                    Action::Move(self.next_exit)
                }
            }
            Phase::Finished => Action::Stay,
        }
    }

    fn memory_bits(&self) -> u64 {
        // p, the idle counter (< p), the trial-division scratch (≤ next p),
        // plus phase (2 bits), traversal flag (1), direction (1).
        3 * bits_for(self.max_p) + 4
    }

    /// `Finished` (the bounded `prime(i)` after its last sweep) is
    /// absorbing: the agent stays forever and the meter is frozen.
    fn halted(&self) -> bool {
        self.finished()
    }

    fn name(&self) -> &'static str {
        "prime-path"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::primorial_index_bound;
    use rvz_sim::{run_pair, PairConfig};
    use rvz_trees::generators::{all_labelings, line};

    /// Is blind-agent rendezvous feasible on the m-node path with starts
    /// a < b (1-based positions as in the paper): m odd, or a−1 ≠ m−b.
    fn feasible(m: usize, a: usize, b: usize) -> bool {
        m % 2 == 1 || (a - 1) != (m - b)
    }

    /// Generous round budget from the Lemma 4.1 analysis: all iterations up
    /// to the primorial bound, each costing ≤ 2(m−1)p + p rounds.
    fn budget(m: usize) -> u64 {
        let mut rounds = m as u64; // init run
        let mut p = 2u64;
        for _ in 0..primorial_index_bound((m * m) as u64) + 2 {
            rounds += 2 * (m as u64 - 1) * p + p;
            p = crate::primes::next_prime(p);
        }
        rounds * 2
    }

    #[test]
    fn meets_exactly_when_feasible_exhaustive_small() {
        // Lemma 4.1: *feasible* pairs meet for EVERY combination of the
        // (adversarial) initial directions and every labeling; infeasible
        // pairs have an adversarial choice defeating the agents. Paths
        // 2..=8 nodes, all start pairs, all labelings, all 4 direction
        // combinations.
        for m in 2..=8usize {
            for labeled in all_labelings(&line(m)) {
                for a in 1..=m {
                    for b in a + 1..=m {
                        let mut all_met = true;
                        for (da, db) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
                            let mut x = PrimePathAgent::with_start_port(da);
                            let mut y = PrimePathAgent::with_start_port(db);
                            let run = run_pair(
                                &labeled,
                                (a - 1) as u32,
                                (b - 1) as u32,
                                &mut x,
                                &mut y,
                                PairConfig::simultaneous(budget(m)),
                            );
                            all_met &= run.outcome.met();
                        }
                        assert_eq!(all_met, feasible(m, a, b), "m={m} a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn meets_on_long_paths() {
        for m in [20usize, 41, 64] {
            let t = line(m);
            // Pick a feasible asymmetric pair.
            let (a, b) = (2u32, (m as u32) - 1);
            let mut x = PrimePathAgent::unbounded();
            let mut y = PrimePathAgent::unbounded();
            let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget(m)));
            assert!(run.outcome.met(), "m={m}");
            // Memory stays O(log log m): the primes used are small.
            assert!(x.memory_bits() <= 3 * 8 + 4, "m={m}: {} bits", x.memory_bits());
        }
    }

    #[test]
    fn infeasible_symmetric_pair_never_meets() {
        // Even path, mirror-symmetric starts, mirror labeling: the agents
        // shadow each other forever.
        let t = rvz_trees::generators::colored_line_center_zero(9); // 10 nodes
        let mut x = PrimePathAgent::unbounded();
        let mut y = PrimePathAgent::unbounded();
        let run = run_pair(&t, 2, 7, &mut x, &mut y, PairConfig::simultaneous(200_000));
        assert!(!run.outcome.met());
        assert!(run.crossings > 0, "they must cross, never meet");
    }

    #[test]
    fn bounded_variant_stops() {
        let t = line(6);
        let mut a = PrimePathAgent::bounded(2);
        let r = rvz_sim::run_single(&t, 0, &mut a, 200, false);
        assert!(a.finished());
        // After finishing, the agent stays at an extremity.
        assert_eq!(t.degree(r.cursor.node), 1);
        assert_eq!(a.max_prime(), 3);
    }

    #[test]
    fn speed_pattern_idles_p_minus_1() {
        // At prime p the agent moves exactly every p rounds.
        let t = line(5);
        let mut a = PrimePathAgent::unbounded();
        let run = rvz_sim::run_single(&t, 0, &mut a, 40, true);
        let trace = run.trace.unwrap();
        // Init run was instant (start at leaf). First prime p=2: idle 1,
        // move 1: positions change every 2 rounds.
        assert_eq!(trace[0], 0);
        assert_eq!(trace[1], 0); // idle
        assert_eq!(trace[2], 1); // move
        assert_eq!(trace[3], 1); // idle
        assert_eq!(trace[4], 2); // move
    }

    #[test]
    fn meeting_round_respects_primorial_bound() {
        for m in [11usize, 18, 25] {
            let t = line(m);
            let (a, b) = (0u32, (m as u32) / 2);
            if !feasible(m, 1, m / 2 + 1) {
                continue;
            }
            let mut x = PrimePathAgent::unbounded();
            let mut y = PrimePathAgent::unbounded();
            let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget(m)));
            assert!(run.outcome.met(), "m={m}");
            // The prime index never needs to exceed the analysis bound.
            let j_max = primorial_index_bound((m * m) as u64);
            assert!(
                x.prime_idx <= j_max + 1,
                "m={m}: used prime index {} > bound {}",
                x.prime_idx,
                j_max
            );
        }
    }
}
