//! The Theorem 4.1 agent: deterministic rendezvous with simultaneous start
//! in arbitrary trees using `O(log ℓ + log log n)` bits of memory.
//!
//! Faithful staging of §4.1:
//!
//! 1. **Stage 1** — `Explo-bis` from the start `v`: walk to `v̂`, learn the
//!    contraction `T'` (its size `ν`, leaf count `ℓ`, Stage-2 shape and the
//!    basic-walk step counts to the landmarks).
//! 2. **Stage 2, `T'` not symmetric** — walk (counting `T'`-node visits) to
//!    the central node, or to the canonical extremity of the central edge,
//!    and wait forever: both agents pick the same physical node.
//! 3. **Stage 2, `T'` symmetric** — Sub-stage 2.1 `Synchro` (delay becomes
//!    exactly `|L − L'|`, Claim 4.2); walk to `v̂_far` (the farthest
//!    extremity of `T'`'s central edge); then the Figure-2 double loop:
//!
//!    ```text
//!    for i = 1, 2, … do                       /* outer loop */
//!        for j = 0, 1, …, 2(ν−1) do           /* first inner loop */
//!            bw(j); cbw(j);                   /* desynchronization probe */
//!            prime(i) on the rendezvous path P
//!        go to the other extremity of the central path C
//!        for j = 0, 1, …, 2(ν−1) do bw(j); cbw(j)   /* reset */
//!        return to the original extremity of C
//!    ```
//!
//!    If the starts are not perfectly symmetrizable, some probe leaves the
//!    two agents desynchronized by `0 < δ < |P|` (Lemmas 4.2/4.3), and
//!    `prime(i)` with `i = O(log n)` meets on `P` (Lemma 4.1). When both
//!    agents converge to the *same* extremity (`v̂_far = v̂'_far`), the
//!    trailing agent catches the leader inside an idle window as soon as
//!    the prime exceeds their constant offset.
//!
//! Memory: the Figure-2 machinery uses counters bounded by `2(ν−1) ≤ 4ℓ`,
//! the segment cursor of `P` (`≤ 20ℓ+3`), and the prime machinery
//! (`O(log log n)` bits); `Explo-bis` is charged per the Fact 2.1 contract
//! (see docs/design-notes.md §D4). [`TreeRendezvousAgent::memory_bits`] reports
//! charged-Explo + measured-everything-else; the fully measured variant
//! (including the reconstruction scratch) is
//! [`TreeRendezvousAgent::memory_bits_measured`].

use crate::rv_path::{PrimeOnPath, RvPathConfig};
use rvz_agent::meter::bits_for;
use rvz_agent::model::{Action, Agent, Obs, Step, SubAgent};
use rvz_explore::{BwCounted, CbwCounted, CrossPath, ExploBis, Synchro, TprimeShape};

/// Sub-stages of the Figure-2 loop.
#[derive(Debug, Clone)]
enum Fig2Stage {
    /// `bw(j)` of the first inner loop.
    TryBw(BwCounted),
    /// `cbw(j)` of the first inner loop.
    TryCbw(CbwCounted),
    /// `prime(i)` on the rendezvous path `P`.
    Prime(PrimeOnPath),
    /// Crossing `C` to the other extremity.
    CrossOut(CrossPath),
    /// `bw(j)` of the second (reset) inner loop.
    ResetBw(BwCounted),
    /// `cbw(j)` of the second inner loop.
    ResetCbw(CbwCounted),
    /// Returning to the original extremity of `C`.
    CrossBack(CrossPath),
}

#[derive(Debug, Clone)]
struct Fig2 {
    cfg: RvPathConfig,
    /// Outer loop index `i ≥ 1` (number of primes for `prime(i)`).
    i: u32,
    /// First-inner-loop index `j ∈ 0..=2(ν−1)`.
    j: u64,
    /// Second-inner-loop index.
    reset_j: u64,
    stage: Fig2Stage,
}

impl Fig2 {
    fn new(cfg: RvPathConfig) -> Self {
        Fig2 { cfg, i: 1, j: 0, reset_j: 0, stage: Fig2Stage::TryBw(BwCounted::new(0)) }
    }

    fn tour_len(&self) -> u64 {
        2 * (self.cfg.nu - 1)
    }
}

#[derive(Debug, Clone)]
enum TPhase {
    Explo(ExploBis),
    /// Walking to the Stage-2 waiting node (central node or canonical
    /// extremity).
    WalkToWait(BwCounted),
    WaitForever,
    Synchro(Synchro),
    WalkToFar(BwCounted),
    Fig2(Fig2),
}

/// Ablation switches for the Stage-2 machinery (docs/design-notes.md §D7 ablations;
/// defaults = the paper's algorithm). Used by the `ablation` experiments to
/// show which pieces are load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationConfig {
    /// Run Sub-stage 2.1 (`Synchro`). With our Explo substitute the phase
    /// durations are already uniform, so disabling it is *observed* to be
    /// harmless — an implementation note the paper's generality needs but
    /// our substitution makes moot (recorded in docs/design-notes.md §D7).
    pub synchro: bool,
    /// Run the `bw(j)/cbw(j)` desynchronization probes of Figure 2.
    /// Disabling them breaks the algorithm on double-spiders with equal
    /// leg sums: the agents stay perfectly synchronized and mirror each
    /// other on `P` forever (the constructive justification of Lemma 4.3).
    pub probes: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig { synchro: true, probes: true }
    }
}

/// The Theorem 4.1 rendezvous agent.
#[derive(Debug, Clone)]
pub struct TreeRendezvousAgent {
    ablation: AblationConfig,
    phase: TPhase,
    /// The symmetric-case plan computed in Stage 1: the `P` walker config
    /// and the step count to `v̂_far`; consumed when `Synchro` ends.
    pending_cfg: Option<(RvPathConfig, u64)>,
    /// `(ν, ℓ)` once known.
    nu: u64,
    ell: u64,
    explo_charged: u64,
    explo_measured: u64,
    /// High-water marks for metering.
    max_i: u32,
    max_j: u64,
    max_prime: u64,
    rounds: u64,
}

impl Default for TreeRendezvousAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeRendezvousAgent {
    pub fn new() -> Self {
        Self::with_ablation(AblationConfig::default())
    }

    /// An ablated variant (for the `experiments` ablation study only).
    pub fn with_ablation(ablation: AblationConfig) -> Self {
        TreeRendezvousAgent {
            ablation,
            phase: TPhase::Explo(ExploBis::new()),
            pending_cfg: None,
            nu: 0,
            ell: 0,
            explo_charged: 0,
            explo_measured: 0,
            max_i: 1,
            max_j: 0,
            max_prime: 2,
            rounds: 0,
        }
    }

    /// Paper-claim memory: `Explo-bis` charged per the Fact 2.1 contract
    /// (`O(log ν) = O(log ℓ)`), everything else measured from counter
    /// high-water marks. This is the quantity Theorem 4.1 bounds by
    /// `O(log ℓ + log log n)`.
    pub fn memory_bits_charged(&self) -> u64 {
        self.explo_charged + self.stage2_bits()
    }

    /// Fully measured memory, including the reconstruction scratch of our
    /// `Explo` substitute (`Θ(ν log ν)` bits; see docs/design-notes.md §D4).
    pub fn memory_bits_measured(&self) -> u64 {
        self.explo_measured + self.stage2_bits()
    }

    /// Measured bits of everything the paper's own algorithm adds on top of
    /// `Explo`: loop indices, walk counters, the `P` cursor, the prime
    /// machinery.
    fn stage2_bits(&self) -> u64 {
        if self.nu == 0 {
            return 3; // phase tag only, nothing learned yet
        }
        let tour = 2 * (self.nu - 1);
        let segs = 20 * self.ell + 3;
        bits_for(self.max_i as u64)      // outer loop i
            + bits_for(self.max_j)       // inner loops j (≤ 2(ν−1))
            + bits_for(tour)             // bw/cbw visit counters
            + bits_for(segs)             // P segment cursor
            + bits_for(tour)             // P within-segment cursor
            + 3 * bits_for(self.max_prime) // prime p, idle counter, scratch
            + 3 // phase tags
    }

    /// Memory the automaton must be *provisioned* with to handle every tree
    /// with at most `n` nodes and at most `ell` leaves — the static
    /// `O(log ℓ + log log n)` of Theorem 4.1, independent of whether a
    /// particular run meets early. Counter widths: `Explo-bis` charged on
    /// the contraction (`ν ≤ 2ℓ−1`), the Figure-2 loop indices (`i` up to
    /// the Lemma 4.1 analysis bound for `|P| ≤ 30nℓ`, `j ≤ 2(ν−1)`), the
    /// `P` segment cursor, and the prime machinery.
    pub fn provisioned_bits(n: u64, ell: u64) -> u64 {
        let nu = (2 * ell - 1).max(2);
        let tour = 2 * (nu - 1);
        let segs = 20 * ell + 3;
        let p_len = 30 * n * ell; // |P| upper bound (§4.1: > 20nℓ, < 30nℓ)
        let i_max = crate::primes::primorial_index_bound(p_len.saturating_mul(p_len)) as u64 + 1;
        let p_max = crate::primes::nth_prime(i_max as u32);
        4 * bits_for(nu)          // Explo-bis (Fact 2.1 contract)
            + bits_for(i_max)     // outer loop i
            + 2 * bits_for(tour)  // j + bw/cbw counters
            + bits_for(segs)      // P segment cursor
            + bits_for(tour)      // P within-segment cursor
            + 3 * bits_for(p_max) // prime machinery
            + 3 // phase tags
    }

    /// The outer-loop index reached (diagnostics).
    pub fn outer_index(&self) -> u32 {
        self.max_i
    }

    /// The largest prime used (diagnostics).
    pub fn max_prime(&self) -> u64 {
        self.max_prime
    }

    /// `(ν, ℓ)` once Stage 1 is finished.
    pub fn tprime_dims(&self) -> Option<(u64, u64)> {
        (self.nu != 0).then_some((self.nu, self.ell))
    }

    /// Is the agent parked in its forever-wait state?
    pub fn waiting(&self) -> bool {
        matches!(self.phase, TPhase::WaitForever)
    }

    /// Dispatch after Stage 1: pick the Stage-2 plan from the shape.
    fn dispatch_after_explo(&mut self, explo: &ExploBis) {
        let res = explo.result().expect("Explo-bis finished");
        self.nu = res.nu;
        self.ell = res.leaves;
        self.explo_charged = res.charged_bits();
        self.explo_measured = res.measured_bits();
        match &res.shape {
            TprimeShape::CentralNode { steps, .. } => {
                self.phase = TPhase::WalkToWait(BwCounted::new(*steps));
            }
            TprimeShape::CentralEdgeAsym { steps, .. } => {
                self.phase = TPhase::WalkToWait(BwCounted::new(*steps));
            }
            TprimeShape::CentralEdgeSym {
                far, near, central_port_far, central_port_near, ..
            } => {
                let cfg = RvPathConfig {
                    nu: res.nu,
                    ell: res.leaves,
                    d_own: res.tprime.degree(*far),
                    d_other: res.tprime.degree(*near),
                    c_own: *central_port_far,
                    c_other: *central_port_near,
                };
                // Stash the config by entering Synchro now and Fig2 later.
                self.pending_cfg = Some((cfg, res.first_visit[*far as usize]));
                if self.ablation.synchro {
                    self.phase = TPhase::Synchro(Synchro::new(res.nu));
                } else {
                    let steps_far = res.first_visit[*far as usize];
                    self.phase = TPhase::WalkToFar(BwCounted::new(steps_far));
                }
            }
        }
    }
}

impl TreeRendezvousAgent {
    fn advance(&mut self, obs: Obs) -> Action {
        // Chain Step::Done transitions within one round; every chain is
        // finite (instant stages are the j = 0 walks and phase switches).
        for _guard in 0..32 {
            match &mut self.phase {
                TPhase::Explo(e) => match e.step(obs) {
                    Step::Done => {
                        let e = e.clone();
                        self.dispatch_after_explo(&e);
                        continue;
                    }
                    Step::Move(p) => return Action::Move(p),
                    Step::Stay => return Action::Stay,
                },
                TPhase::WalkToWait(w) => match w.step(obs) {
                    Step::Done => {
                        self.phase = TPhase::WaitForever;
                        continue;
                    }
                    Step::Move(p) => return Action::Move(p),
                    Step::Stay => return Action::Stay,
                },
                TPhase::WaitForever => return Action::Stay,
                TPhase::Synchro(s) => match s.step(obs) {
                    Step::Done => {
                        let (_, steps_far) = self.pending_cfg.as_ref().expect("set before Synchro");
                        self.phase = TPhase::WalkToFar(BwCounted::new(*steps_far));
                        continue;
                    }
                    Step::Move(p) => return Action::Move(p),
                    Step::Stay => return Action::Stay,
                },
                TPhase::WalkToFar(w) => match w.step(obs) {
                    Step::Done => {
                        let (cfg, _) = self.pending_cfg.take().expect("set before Synchro");
                        self.phase = TPhase::Fig2(Fig2::new(cfg));
                        continue;
                    }
                    Step::Move(p) => return Action::Move(p),
                    Step::Stay => return Action::Stay,
                },
                TPhase::Fig2(f) => {
                    // With probes ablated the inner loops collapse to their
                    // j = 0 iteration (prime(i) alone).
                    let tour = if self.ablation.probes { f.tour_len() } else { 0 };
                    match &mut f.stage {
                        Fig2Stage::TryBw(w) => match w.step(obs) {
                            Step::Done => {
                                f.stage = Fig2Stage::TryCbw(CbwCounted::reversing(f.j));
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::TryCbw(w) => match w.step(obs) {
                            Step::Done => {
                                f.stage = Fig2Stage::Prime(PrimeOnPath::new(f.i, f.cfg));
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::Prime(prime) => match prime.step(obs) {
                            Step::Done => {
                                self.max_prime = self.max_prime.max(prime.max_prime());
                                f.j += 1;
                                self.max_j = self.max_j.max(f.j);
                                if f.j <= tour {
                                    f.stage = Fig2Stage::TryBw(BwCounted::new(f.j));
                                } else {
                                    f.stage = Fig2Stage::CrossOut(CrossPath::new(f.cfg.c_own));
                                }
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::CrossOut(c) => match c.step(obs) {
                            Step::Done => {
                                f.reset_j = 0;
                                f.stage = Fig2Stage::ResetBw(BwCounted::new(0));
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::ResetBw(w) => match w.step(obs) {
                            Step::Done => {
                                f.stage = Fig2Stage::ResetCbw(CbwCounted::reversing(f.reset_j));
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::ResetCbw(w) => match w.step(obs) {
                            Step::Done => {
                                f.reset_j += 1;
                                if f.reset_j <= tour {
                                    f.stage = Fig2Stage::ResetBw(BwCounted::new(f.reset_j));
                                } else {
                                    f.stage = Fig2Stage::CrossBack(CrossPath::new(f.cfg.c_other));
                                }
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                        Fig2Stage::CrossBack(c) => match c.step(obs) {
                            Step::Done => {
                                f.i += 1;
                                self.max_i = self.max_i.max(f.i);
                                f.j = 0;
                                f.stage = Fig2Stage::TryBw(BwCounted::new(0));
                                continue;
                            }
                            Step::Move(p) => return Action::Move(p),
                            Step::Stay => return Action::Stay,
                        },
                    }
                }
            }
        }
        unreachable!("phase chain exceeded the static bound");
    }
}

impl Agent for TreeRendezvousAgent {
    fn act(&mut self, obs: Obs) -> Action {
        self.rounds += 1;
        self.advance(obs)
    }

    fn memory_bits(&self) -> u64 {
        self.memory_bits_charged()
    }

    fn name(&self) -> &'static str {
        "tree-rendezvous"
    }

    /// The Stage-2 wait-forever state is absorbing: the agent stays put and
    /// every meter high-water mark is frozen (only the uncounted `rounds`
    /// diagnostic keeps ticking).
    fn halted(&self) -> bool {
        self.waiting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_sim::{run_pair, PairConfig};
    use rvz_trees::generators::{
        caterpillar, colored_line_center_zero, complete_binary, line, random_relabel, random_tree,
        spider, star,
    };
    use rvz_trees::{perfectly_symmetrizable, NodeId, Tree};

    fn meet(t: &Tree, a: NodeId, b: NodeId, budget: u64) -> (bool, u64, u64) {
        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        let run = run_pair(t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget));
        let bits = x.memory_bits_charged().max(y.memory_bits_charged());
        (run.outcome.met(), run.outcome.round().unwrap_or(budget), bits)
    }

    #[test]
    fn central_node_case_meets_fast() {
        // Spider: T' has a central node (the hub); both agents walk there.
        let t = spider(3, 4);
        for (a, b) in [(4u32, 8u32), (1, 12), (0, 6)] {
            let (met, round, _) = meet(&t, a, b, 100_000);
            assert!(met, "({a},{b})");
            // Explo + the walk: comfortably within a few tours.
            assert!(round < 10 * 2 * (t.num_nodes() as u64), "({a},{b}) took {round}");
        }
    }

    #[test]
    fn star_meets_at_hub() {
        let t = star(6);
        let (met, _, _) = meet(&t, 1, 4, 10_000);
        assert!(met);
    }

    #[test]
    fn asymmetric_central_edge_meets() {
        // T' of this caterpillar has a central edge with non-isomorphic
        // halves: agents converge on the canonical extremity.
        let t = caterpillar(4, &[2, 0, 0, 3]);
        for (a, b) in [(0u32, 3u32), (4, 8), (1, 2)] {
            let (met, _, _) = meet(&t, a, b, 100_000);
            assert!(met, "({a},{b})");
        }
    }

    #[test]
    fn odd_line_meets_via_fig2() {
        // Any path has T' = a single (symmetric) edge, so this exercises
        // Synchro + Figure 2 + prime-on-P end to end. Odd lines are never
        // perfectly symmetrizable.
        let t = line(5);
        for (a, b) in [(0u32, 4u32), (0, 2), (1, 3), (1, 4)] {
            assert!(!perfectly_symmetrizable(&t, a, b));
            let (met, round, _) = meet(&t, a, b, 20_000_000);
            assert!(met, "({a},{b})");
            let _ = round;
        }
    }

    #[test]
    fn even_line_meets_on_asymmetric_pairs() {
        let t = line(6);
        for (a, b) in [(0u32, 4u32), (1, 5), (0, 1)] {
            assert!(!perfectly_symmetrizable(&t, a, b));
            let (met, _, _) = meet(&t, a, b, 20_000_000);
            assert!(met, "({a},{b})");
        }
    }

    #[test]
    fn even_line_mirror_pairs_never_meet() {
        // Perfectly symmetrizable pair + the mirror labeling: infeasible.
        let t = colored_line_center_zero(5); // 6 nodes
        for (a, b) in [(0u32, 5u32), (1, 4), (2, 3)] {
            assert!(perfectly_symmetrizable(&t, a, b));
            let (met, _, _) = meet(&t, a, b, 2_000_000);
            assert!(!met, "({a},{b}) must not meet");
        }
    }

    #[test]
    fn complete_binary_tree_meets() {
        // T' symmetric central edge; T has a central node, so no pair is
        // perfectly symmetrizable — even mirror leaves must meet.
        let t = complete_binary(2); // 7 nodes
        for (a, b) in [(3u32, 6u32), (1, 2), (3, 4), (0, 5)] {
            assert!(!perfectly_symmetrizable(&t, a, b));
            let (met, _, _) = meet(&t, a, b, 50_000_000);
            assert!(met, "({a},{b})");
        }
    }

    #[test]
    fn random_trees_meet_on_random_positions() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tested = 0;
        while tested < 6 {
            let t = random_relabel(&random_tree(10, &mut rng), &mut rng);
            let a = 0u32;
            let b = (t.num_nodes() - 1) as u32;
            if perfectly_symmetrizable(&t, a, b) {
                continue;
            }
            let (met, _, _) = meet(&t, a, b, 50_000_000);
            assert!(met, "tree {t:?} pair ({a},{b})");
            tested += 1;
        }
    }

    #[test]
    fn memory_grows_like_log_ell_plus_loglog_n() {
        // Lines (ℓ = 2): memory must stay tiny as n grows.
        let mut prev_bits = 0;
        for n in [8usize, 64, 512] {
            let t = line(n);
            let (met, _, bits) = meet(&t, 1, (n as u32) - 1, 2_000_000_000);
            assert!(met, "n={n}");
            assert!(bits <= 60, "n={n}: {bits} bits is not O(log ℓ + log log n)");
            prev_bits = prev_bits.max(bits);
        }
        assert!(prev_bits > 0);
    }
}
