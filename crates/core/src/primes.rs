//! Prime-number arithmetic for the `prime` protocol (Lemma 4.1).
//!
//! The paper's agent finds "the smallest prime larger than p … using
//! O(log p) bits, e.g., by exhaustive search" — trial division. We do the
//! same; the scratch is two counters bounded by the next prime, which the
//! memory meter charges as `2·⌈log₂ p⌉` bits.

/// Is `x` prime? Trial division, `O(√x)`.
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x < 4 {
        return true;
    }
    if x.is_multiple_of(2) {
        return false;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime strictly greater than `p`.
pub fn next_prime(p: u64) -> u64 {
    let mut x = p + 1;
    while !is_prime(x) {
        x += 1;
    }
    x
}

/// The `i`-th prime, 1-based (`nth_prime(1) == 2`).
pub fn nth_prime(i: u32) -> u64 {
    let mut p = 2u64;
    for _ in 1..i {
        p = next_prime(p);
    }
    p
}

/// `Σ_{k=1..i} p_k` — used for the Lemma 4.1 round-count bounds.
pub fn prime_sum(i: u32) -> u64 {
    let mut sum = 0;
    let mut p = 2u64;
    for _ in 0..i {
        sum += p;
        p = next_prime(p);
    }
    sum
}

/// The smallest index `j` with `Π_{k=1..j} p_k > bound`.
///
/// Lemma 4.1's analysis: if the agents have not met after the `j`-th loop
/// iteration then the primorial `Π_{k=1..j} p_k` divides a product of two
/// distances `≤ m²`; hence rendezvous (when feasible) happens at or before
/// iteration `primorial_index_bound(m²)`.
pub fn primorial_index_bound(bound: u64) -> u32 {
    let mut j = 0u32;
    let mut product = 1u128;
    let mut p = 2u64;
    loop {
        product = product.saturating_mul(p as u128);
        if product > bound as u128 {
            return j + 1; // iteration at which the primorial first exceeds
        }
        j += 1;
        p = next_prime(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_basics() {
        let primes: Vec<u64> = (0..60).filter(|&x| is_prime(x)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]);
    }

    #[test]
    fn next_prime_chains() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(3), 5);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(89), 97);
    }

    #[test]
    fn nth_prime_values() {
        assert_eq!(nth_prime(1), 2);
        assert_eq!(nth_prime(5), 11);
        assert_eq!(nth_prime(10), 29);
    }

    #[test]
    fn prime_sums() {
        assert_eq!(prime_sum(0), 0);
        assert_eq!(prime_sum(1), 2);
        assert_eq!(prime_sum(4), 2 + 3 + 5 + 7);
    }

    #[test]
    fn primorial_bound_grows_like_log() {
        // 2·3·5·7 = 210 > 100 ⇒ at most 4 iterations for m² = 100.
        assert_eq!(primorial_index_bound(100), 4);
        assert_eq!(primorial_index_bound(1), 1);
        assert_eq!(primorial_index_bound(6), 3); // 2·3 = 6 ≤ 6 < 2·3·5
                                                 // Log-like growth: even 2⁶⁴ needs only 16 primes.
        assert_eq!(primorial_index_bound(u64::MAX), 16);
    }
}
