//! # rvz-core
//!
//! The rendezvous algorithms of Fraigniaud & Pelc, *Delays induce an
//! exponential memory gap for rendezvous in trees* (SPAA 2010) — the paper's
//! primary contribution:
//!
//! * [`prime_path`] — the `prime` protocol for blind agents on paths
//!   (Lemma 4.1): `O(log log m)` bits, meets whenever feasible;
//! * [`rv_path`] — the rendezvous path `P` of Sub-stage 2.2 and `prime(i)`
//!   executed along it with an `O(log ℓ)`-bit segment cursor;
//! * [`tree_agent`] — the full Theorem 4.1 agent
//!   (`O(log ℓ + log log n)` bits, simultaneous start, arbitrary trees);
//! * [`baseline`] — the `O(log n)`-bit arbitrary-delay baseline
//!   (tree-specialized stand-in for \[14\]; docs/design-notes.md §D5);
//! * [`primes`] — the trial-division prime arithmetic both protocols use.
//!
//! The exponential gap of the title is the contrast between
//! [`tree_agent::TreeRendezvousAgent`] (delay zero, `O(log ℓ + log log n)`)
//! and what any agent needs under arbitrary delays (`Ω(log n)`, Theorem 3.1,
//! constructively realized in `rvz-lowerbounds`).
//!
//! ```
//! use rvz_core::TreeRendezvousAgent;
//! use rvz_sim::{run_pair, Outcome, PairConfig};
//! use rvz_trees::generators::spider;
//!
//! // Theorem 4.1 end to end: two identical copies, simultaneous start,
//! // any feasible pair of a few-leaf tree — they meet.
//! let t = spider(3, 3); // 3-leg spider: central node, every pair feasible
//! let (mut a, mut b) = (TreeRendezvousAgent::new(), TreeRendezvousAgent::new());
//! let run = run_pair(&t, 1, 5, &mut a, &mut b, PairConfig::simultaneous(1_000_000));
//! assert!(matches!(run.outcome, Outcome::Met { .. }));
//! ```

pub mod ablation;
pub mod baseline;
pub mod gathering;
pub mod prime_path;
pub mod primes;
pub mod rv_path;
pub mod tree_agent;

pub use baseline::DelayRobustAgent;
pub use gathering::{gather, gatherable};
pub use prime_path::PrimePathAgent;
pub use rv_path::{PrimeOnPath, RvPathConfig, RvPathWalker};
pub use tree_agent::{AblationConfig, TreeRendezvousAgent};
