//! # rvz-core
//!
//! The rendezvous algorithms of Fraigniaud & Pelc, *Delays induce an
//! exponential memory gap for rendezvous in trees* (SPAA 2010) — the paper's
//! primary contribution:
//!
//! * [`prime_path`] — the `prime` protocol for blind agents on paths
//!   (Lemma 4.1): `O(log log m)` bits, meets whenever feasible;
//! * [`rv_path`] — the rendezvous path `P` of Sub-stage 2.2 and `prime(i)`
//!   executed along it with an `O(log ℓ)`-bit segment cursor;
//! * [`tree_agent`] — the full Theorem 4.1 agent
//!   (`O(log ℓ + log log n)` bits, simultaneous start, arbitrary trees);
//! * [`baseline`] — the `O(log n)`-bit arbitrary-delay baseline
//!   (tree-specialized stand-in for \[14\]; DESIGN.md §D5);
//! * [`primes`] — the trial-division prime arithmetic both protocols use.
//!
//! The exponential gap of the title is the contrast between
//! [`tree_agent::TreeRendezvousAgent`] (delay zero, `O(log ℓ + log log n)`)
//! and what any agent needs under arbitrary delays (`Ω(log n)`, Theorem 3.1,
//! constructively realized in `rvz-lowerbounds`).

pub mod ablation;
pub mod baseline;
pub mod gathering;
pub mod prime_path;
pub mod primes;
pub mod rv_path;
pub mod tree_agent;

pub use baseline::DelayRobustAgent;
pub use gathering::{gather, gatherable};
pub use prime_path::PrimePathAgent;
pub use rv_path::{PrimeOnPath, RvPathConfig, RvPathWalker};
pub use tree_agent::{AblationConfig, TreeRendezvousAgent};
