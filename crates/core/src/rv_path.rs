//! The rendezvous path `P` of Sub-stage 2.2 (§4.1) and the `prime(i)`
//! protocol executed along it.
//!
//! `P = (B_u | C_{u→v} | B̄_v | C_{v→u})^{5ℓ} | (B_u | C_{u→v} | B̄_v)`,
//! where `B_u` is the closed basic-walk tour from the agent's own extremity
//! (`2(ν−1)` `T'`-edge traversals), `B̄_v` the closed *counter*-basic-walk
//! tour from the other extremity, and `C` the central path. By Claim 4.3 the
//! agent standing at the other extremity traverses the reverse of `P` when
//! executing the same instruction sequence, so the two agents effectively
//! run the Lemma 4.1 `prime` protocol from the two ends of one virtual path
//! of length `> 20nℓ`.
//!
//! The agent does **not** track its absolute position on `P` (that would
//! cost `Ω(log n)` bits). It tracks `(segment index ≤ 20ℓ + 3, T'-visit
//! count within the segment ≤ 2(ν−1))` — `O(log ℓ)` bits — plus the cached
//! entry port; segment boundaries override the within-tour port rules:
//!
//! | position | forward exit | backward exit |
//! |---|---|---|
//! | start of `B` (own extremity) | `0` (bw start) | — |
//! | end of `B` entered backward | — | `d_own − 1` |
//! | start of `B̄` (other extremity) | `d_other − 1` (cbw start) | — |
//! | end of `B̄` entered backward | — | `0` |
//! | start of `C` | central port | central port of the other end |
//! | inside `B` / `B̄` / `C` | `(i±1) mod d` | mirrored |

use crate::primes::next_prime;
use rvz_agent::meter::bits_for;
use rvz_agent::model::{bw_exit, cbw_exit, Obs, Step, SubAgent};
use rvz_trees::Port;

/// Direction of travel along `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the agent's own extremity toward the other one.
    Forward,
    /// Back toward the agent's own extremity.
    Backward,
}

/// Landmark data the walker needs about the central edge of `T'`
/// (all available from `Explo-bis`, Fact 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RvPathConfig {
    /// ν = number of `T'` nodes.
    pub nu: u64,
    /// ℓ = number of leaves (the `5ℓ` repetition count).
    pub ell: u64,
    /// Degree (in `T`, equal in `T'`) of the agent's own extremity.
    pub d_own: Port,
    /// Degree of the other extremity.
    pub d_other: Port,
    /// Port at the own extremity toward the central path.
    pub c_own: Port,
    /// Port at the other extremity toward the central path.
    pub c_other: Port,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SegKind {
    /// Basic-walk tour from the own extremity.
    BOwn,
    /// Central path own → other.
    COut,
    /// Counter-basic-walk tour from the other extremity.
    BOther,
    /// Central path other → own.
    CBack,
}

/// Where the agent stands on `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathPos {
    /// Segment index in `0..=num_segs` (`num_segs` = far-end sentinel).
    seg: u32,
    /// For `B` segments: `T'` arrivals completed (0 = at segment start).
    /// For `C` segments: 0 = at start, 1 = inside.
    progress: u64,
}

/// The `P` walker: computes exits and tracks the segment cursor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RvPathWalker {
    cfg: RvPathConfig,
    pos: PathPos,
    /// The agent stands exactly on a segment boundary (the start node of
    /// `pos.seg`): the next move uses the segment-entry port rule rather
    /// than the within-tour `(i±1)` rules. One bit — without it, a
    /// degree-2 first hop would be mistaken for "still at the boundary"
    /// (`progress` only counts `T'`-node arrivals).
    fresh: bool,
    /// Entry port of the last arrival (survives idle rounds).
    cached_entry: Option<Port>,
    /// Degree of the current node (cached at arrival, like the entry).
    cached_deg: Port,
}

impl RvPathWalker {
    pub fn new(cfg: RvPathConfig) -> Self {
        RvPathWalker {
            cfg,
            pos: PathPos { seg: 0, progress: 0 },
            fresh: true,
            cached_entry: None,
            cached_deg: 0,
        }
    }

    /// Number of segments: `4·5ℓ + 3`.
    pub fn num_segs(&self) -> u32 {
        (20 * self.cfg.ell + 3) as u32
    }

    fn kind(&self, seg: u32) -> SegKind {
        match seg % 4 {
            0 => SegKind::BOwn,
            1 => SegKind::COut,
            2 => SegKind::BOther,
            _ => SegKind::CBack,
        }
    }

    /// `2(ν−1)`: the `T'`-visit length of a `B` segment.
    fn tour_len(&self) -> u64 {
        2 * (self.cfg.nu - 1)
    }

    pub fn at_near_end(&self) -> bool {
        self.pos.seg == 0 && self.fresh
    }

    pub fn at_far_end(&self) -> bool {
        self.pos.seg == self.num_segs()
    }

    /// Segment cursor (for metering: both components are `O(log ℓ)` bits).
    pub fn cursor(&self) -> (u32, u64) {
        (self.pos.seg, self.pos.progress)
    }

    /// Computes the exit port for the next traversal in direction `dir` and
    /// performs the segment-boundary bookkeeping for *leaving* the current
    /// position. Call exactly once per edge traversal, then feed the arrival
    /// to [`RvPathWalker::complete_move`].
    pub fn begin_move(&mut self, dir: Dir) -> Port {
        match dir {
            Dir::Forward => {
                debug_assert!(!self.at_far_end(), "cannot go forward past P's end");
                if self.fresh {
                    // First traversal of the segment: entry-port rule.
                    self.fresh = false;
                    return match self.kind(self.pos.seg) {
                        SegKind::BOwn => 0,                      // bw tour start
                        SegKind::BOther => self.cfg.d_other - 1, // cbw tour start
                        SegKind::COut => self.cfg.c_own,
                        SegKind::CBack => self.cfg.c_other,
                    };
                }
                match self.kind(self.pos.seg) {
                    SegKind::BOwn => bw_exit(self.cached_entry, self.cached_degree()),
                    SegKind::BOther => cbw_exit(self.cached_entry, self.cached_degree()),
                    // Inside the central path: degree-2 pass-through.
                    SegKind::COut | SegKind::CBack => bw_exit(self.cached_entry, 2),
                }
            }
            Dir::Backward => {
                debug_assert!(!self.at_near_end(), "cannot go backward past P's start");
                if self.fresh {
                    // Standing on a boundary: enter the previous segment
                    // from its end.
                    let prev = self.pos.seg - 1;
                    let kind = self.kind(prev);
                    self.pos.seg = prev;
                    self.pos.progress = match kind {
                        SegKind::BOwn | SegKind::BOther => self.tour_len(),
                        SegKind::COut | SegKind::CBack => 1,
                    };
                    self.fresh = false;
                    return match kind {
                        // B's last traversal entered the own extremity via
                        // d_own − 1: undo it.
                        SegKind::BOwn => self.cfg.d_own - 1,
                        // B̄'s last traversal entered the other extremity via
                        // port 0: undo it.
                        SegKind::BOther => 0,
                        // C entered backward from its end.
                        SegKind::COut => self.cfg.c_other,
                        SegKind::CBack => self.cfg.c_own,
                    };
                }
                match self.kind(self.pos.seg) {
                    // Undoing a basic walk runs the counter rule and
                    // vice versa.
                    SegKind::BOwn => cbw_exit(self.cached_entry, self.cached_degree()),
                    SegKind::BOther => bw_exit(self.cached_entry, self.cached_degree()),
                    SegKind::COut | SegKind::CBack => bw_exit(self.cached_entry, 2),
                }
            }
        }
    }

    fn cached_degree(&self) -> Port {
        self.cached_deg
    }

    /// Arrival bookkeeping after a traversal in direction `dir`.
    pub fn complete_move(&mut self, obs: Obs, dir: Dir) {
        self.cached_entry = obs.entry;
        self.cached_deg = obs.degree;
        let tprime_node = obs.degree != 2;
        match dir {
            Dir::Forward => match self.kind(self.pos.seg) {
                SegKind::BOwn | SegKind::BOther => {
                    if tprime_node {
                        self.pos.progress += 1;
                        if self.pos.progress == self.tour_len() {
                            self.pos.seg += 1;
                            self.pos.progress = 0;
                            self.fresh = true;
                        }
                    }
                }
                SegKind::COut | SegKind::CBack => {
                    if tprime_node {
                        self.pos.seg += 1;
                        self.pos.progress = 0;
                        self.fresh = true;
                    } else {
                        self.pos.progress = 1;
                    }
                }
            },
            Dir::Backward => match self.kind(self.pos.seg) {
                SegKind::BOwn | SegKind::BOther => {
                    if tprime_node {
                        self.pos.progress -= 1;
                        if self.pos.progress == 0 {
                            // Back on the segment's start boundary.
                            self.fresh = true;
                        }
                    }
                }
                SegKind::COut | SegKind::CBack => {
                    if tprime_node {
                        self.pos.progress = 0;
                        self.fresh = true;
                    }
                }
            },
        }
    }
}

/// The `prime(i)` protocol run along `P` (Figure 2's inner-loop step).
///
/// The agent starts at its own extremity (P's near end for it); for each of
/// the first `i` primes it traverses `P` twice (to the far end and back) at
/// speed `1/p`, then reports [`Step::Done`] back at the near end.
#[derive(Debug, Clone)]
pub struct PrimeOnPath {
    cap: u32,
    walker: RvPathWalker,
    dir: Dir,
    p: u64,
    prime_idx: u32,
    idle_done: u64,
    /// Which of the two traversals of the current prime (0 or 1).
    traversal: u8,
    /// Set when the pending move's arrival still needs processing.
    in_flight: bool,
    finished: bool,
    max_p: u64,
}

impl PrimeOnPath {
    pub fn new(i: u32, cfg: RvPathConfig) -> Self {
        assert!(i >= 1);
        PrimeOnPath {
            cap: i,
            walker: RvPathWalker::new(cfg),
            dir: Dir::Forward,
            p: 2,
            prime_idx: 1,
            idle_done: 0,
            traversal: 0,
            in_flight: false,
            finished: false,
            max_p: 2,
        }
    }

    pub fn max_prime(&self) -> u64 {
        self.max_p
    }

    /// Measured persistent memory of the protocol state: prime + idle +
    /// trial-division scratch + segment cursor.
    pub fn memory_bits(&self) -> u64 {
        3 * bits_for(self.max_p)
            + bits_for(self.walker.num_segs() as u64)
            + bits_for(self.walker.tour_len())
            + 4
    }
}

impl SubAgent for PrimeOnPath {
    fn step(&mut self, obs: Obs) -> Step {
        if self.finished {
            return Step::Done;
        }
        debug_assert!(obs.degree >= 1, "P runs on real tree nodes");
        if self.in_flight {
            // Process the arrival of the previous move.
            self.walker.complete_move(obs, self.dir);
            self.in_flight = false;
            // Extremity logic.
            if self.dir == Dir::Forward && self.walker.at_far_end() {
                self.dir = Dir::Backward;
                self.traversal += 1;
            } else if self.dir == Dir::Backward && self.walker.at_near_end() {
                self.dir = Dir::Forward;
                self.traversal += 1;
                if self.traversal >= 2 {
                    self.traversal = 0;
                    if self.prime_idx == self.cap {
                        self.finished = true;
                        return Step::Done;
                    }
                    self.p = next_prime(self.p);
                    self.prime_idx += 1;
                    self.max_p = self.max_p.max(self.p);
                }
            }
        }
        // Speed 1/p: idle p−1 rounds before each traversal.
        if self.idle_done + 1 < self.p {
            self.idle_done += 1;
            return Step::Stay;
        }
        self.idle_done = 0;
        let port = self.walker.begin_move(self.dir);
        self.in_flight = true;
        Step::Move(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_agent::model::Action;
    use rvz_sim::Cursor;
    use rvz_trees::generators::{double_spider, line, random_relabel};
    use rvz_trees::{contract, NodeId, Tree};

    /// Builds the walker config for the symmetric-central-edge tree `t`
    /// with the agent's own extremity `own` and the other extremity
    /// `other` (both `T` node ids of degree ≠ 2).
    fn config_for(t: &Tree, own: NodeId, other: NodeId) -> RvPathConfig {
        let c = contract(t);
        let own_tp = c.t_to_tp[own as usize].unwrap();
        let other_tp = c.t_to_tp[other as usize].unwrap();
        let c_own = c.tree.port_towards(own_tp, other_tp).expect("central edge");
        let c_other = c.tree.port_towards(other_tp, own_tp).expect("central edge");
        RvPathConfig {
            nu: c.num_nodes() as u64,
            ell: t.num_leaves() as u64,
            d_own: t.degree(own),
            d_other: t.degree(other),
            c_own,
            c_other,
        }
    }

    /// Walks P fully in `dir`, returning the physical node sequence
    /// (including the start node).
    fn traverse(t: &Tree, start: NodeId, w: &mut RvPathWalker, dir: Dir) -> Vec<NodeId> {
        let mut cur = Cursor::new(start);
        // Seed the cached entry/degree as the protocol would have them.
        let mut nodes = vec![start];
        let done = |w: &RvPathWalker| match dir {
            Dir::Forward => w.at_far_end(),
            Dir::Backward => w.at_near_end(),
        };
        let mut steps = 0u64;
        while !done(w) {
            let port = w.begin_move(dir);
            assert!(cur.apply(t, Action::Move(port)), "P-walk port must be valid");
            w.complete_move(cur.obs(t), dir);
            nodes.push(cur.node);
            steps += 1;
            assert!(steps < 10_000_000, "P-walk did not terminate");
        }
        nodes
    }

    fn p_len(cfg: &RvPathConfig, t: &Tree) -> u64 {
        // |P| = 5ℓ·(2·2(n−1) + 2·|C|) + 2·2(n−1) + |C| physical edges.
        let n = t.num_nodes() as u64;
        let b = 2 * (n - 1);
        // Find |C| by walking: distance between the extremities.
        let c = cfg.ell; // placeholder, recomputed by callers when needed
        let _ = c;
        let _ = b;
        0 // length is checked structurally below instead
    }

    #[test]
    fn forward_traversal_ends_at_other_extremity() {
        // Path tree: extremities are the two leaves.
        let t = line(7);
        let cfg = config_for(&t, 0, 6);
        let mut w = RvPathWalker::new(cfg);
        let nodes = traverse(&t, 0, &mut w, Dir::Forward);
        assert_eq!(*nodes.last().unwrap(), 6, "P ends at the other extremity");
        // |P| = 5ℓ(2B + 2C) + 2B + C with B = 2(n−1) = 12, C = 6, ℓ = 2:
        // 10·36 + 30 = 390 edges.
        assert_eq!(nodes.len() as u64 - 1, 390);
    }

    #[test]
    fn backward_traversal_is_exact_reversal() {
        for (t, own, other) in [
            (line(5), 0u32, 4u32),
            (double_spider(&[1, 4], &[2, 3], 3), 1, 0),
            (double_spider(&[2, 2], &[1, 3], 5), 0, 1),
        ] {
            let cfg = config_for(&t, own, other);
            let mut w = RvPathWalker::new(cfg);
            let fwd = traverse(&t, own, &mut w, Dir::Forward);
            assert!(w.at_far_end());
            let bwd = traverse(&t, *fwd.last().unwrap(), &mut w, Dir::Backward);
            assert!(w.at_near_end());
            let mut expect = fwd.clone();
            expect.reverse();
            assert_eq!(bwd, expect, "backward P-walk must retrace forward exactly");
        }
    }

    #[test]
    fn segment_boundaries_sit_on_extremities() {
        let t = double_spider(&[1, 4], &[2, 3], 3);
        let cfg = config_for(&t, 1, 0);
        let mut w = RvPathWalker::new(cfg);
        let mut cur = Cursor::new(1);
        let mut prev_seg = 0;
        while !w.at_far_end() {
            let port = w.begin_move(Dir::Forward);
            cur.apply(&t, Action::Move(port));
            w.complete_move(cur.obs(&t), Dir::Forward);
            let (seg, _) = w.cursor();
            if seg != prev_seg {
                assert!(
                    cur.node == 0 || cur.node == 1,
                    "segment boundary at non-extremity node {}",
                    cur.node
                );
                // B segments start at alternating extremities: segment
                // parity determines which.
                prev_seg = seg;
            }
        }
        assert_eq!(cur.node, 0, "P from extremity 1 ends at extremity 0");
    }

    #[test]
    fn first_b_segment_is_the_full_euler_tour() {
        // The first 2(n−1) physical steps of P are the closed basic-walk
        // tour from the own extremity.
        let mut rng = StdRng::seed_from_u64(33);
        let t = random_relabel(&line(9), &mut rng);
        let cfg = config_for(&t, 0, 8);
        let mut w = RvPathWalker::new(cfg);
        let nodes = traverse(&t, 0, &mut w, Dir::Forward);
        let n = t.num_nodes() as usize;
        assert_eq!(nodes[2 * (n - 1)], 0, "B_own is closed");
        let mut seen: Vec<bool> = vec![false; n];
        for &v in &nodes[..2 * (n - 1)] {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "B_own covers the tree");
    }

    #[test]
    fn prime_on_path_returns_to_near_end_and_counts_rounds() {
        let t = line(5);
        let cfg = config_for(&t, 0, 4);
        // |P| = 5·2·(2·8 + 2·4) + 2·8 + 4 = 240 + 20 = 260.
        let p_edges = 260u64;
        let mut prime = PrimeOnPath::new(2, cfg);
        let mut cur = Cursor::new(0);
        let mut rounds = 0u64;
        loop {
            match prime.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                    rounds += 1;
                }
                Step::Stay => {
                    rounds += 1;
                }
            }
            assert!(rounds < 100_000_000);
        }
        assert_eq!(cur.node, 0, "prime(i) ends at the near extremity");
        // Two full traversals per prime at speed 1/p: Σ 2·|P|·p for p=2,3.
        assert_eq!(rounds, 2 * p_edges * 2 + 2 * p_edges * 3);
        assert_eq!(prime.max_prime(), 3);
        let _ = p_len(&RvPathWalker::new(config_for(&t, 0, 4)).cfg, &t);
    }

    #[test]
    fn walker_memory_is_logarithmic_in_ell() {
        let t = double_spider(&[1, 4], &[2, 3], 3);
        let cfg = config_for(&t, 1, 0);
        let prime = PrimeOnPath::new(1, cfg);
        // Segment cursor ≤ 20ℓ+3, within-segment ≤ 2(ν−1), prime counters.
        assert!(prime.memory_bits() <= 40, "{} bits", prime.memory_bits());
    }
}
