//! Ablation study of the Stage-2 design choices (docs/design-notes.md §D7): which
//! pieces of Figure 2 are load-bearing?
//!
//! * **The `bw(j)/cbw(j)` probes** are essential: on a double-spider with
//!   equal leg *sums* but different leg *compositions* (contraction
//!   symmetric, physical tree not perfectly symmetrizable), the two hub
//!   agents finish every phase at exactly the same round. Without the
//!   probes, the delay at every `prime(i)` start is zero forever, and the
//!   agents mirror each other across the odd-length central path — they
//!   cross inside edges but never co-locate. The probes inject the length
//!   differences `l_j ≠ l'_j` into the schedule (Lemma 4.3's mechanism) and
//!   rendezvous follows.
//! * **`Synchro`** is required by the paper for a general Fact 2.1 box
//!   whose running time may vary; our reconstruction-based `Explo-bis` is
//!   already exactly-synchronous (duration `L + 2(n−1)`), so ablating
//!   Synchro is *observed* harmless here. The experiment records this as an
//!   implementation note rather than a refutation.

use crate::tree_agent::{AblationConfig, TreeRendezvousAgent};
use rvz_sim::{run_pair, Outcome, PairConfig};
use rvz_trees::generators::double_spider;
use rvz_trees::{NodeId, Tree};

/// One ablation verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AblationResult {
    pub variant: &'static str,
    pub met: bool,
    pub round: Option<u64>,
}

/// The canonical distinguishing instance: hubs of a `{1,4}` vs `{2,3}`
/// double-spider with an odd joining path. Equal leg sums ⇒ equal phase
/// durations; odd path ⇒ mirrored `prime` runs cross but never meet.
pub fn probe_ablation_instance() -> (Tree, NodeId, NodeId) {
    (double_spider(&[1, 4], &[2, 3], 3), 0, 1)
}

/// Runs the full agent and the ablated variants on an instance.
pub fn compare_variants(t: &Tree, a: NodeId, b: NodeId, budget: u64) -> Vec<AblationResult> {
    let variants: [(&'static str, AblationConfig); 4] = [
        ("full", AblationConfig::default()),
        ("no-synchro", AblationConfig { synchro: false, probes: true }),
        ("no-probes", AblationConfig { synchro: true, probes: false }),
        ("minimal", AblationConfig { synchro: false, probes: false }),
    ];
    variants
        .iter()
        .map(|&(name, cfg)| {
            let mut x = TreeRendezvousAgent::with_ablation(cfg);
            let mut y = TreeRendezvousAgent::with_ablation(cfg);
            let run = run_pair(t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget));
            AblationResult {
                variant: name,
                met: run.outcome.met(),
                round: match run.outcome {
                    Outcome::Met { round, .. } => Some(round),
                    Outcome::Timeout { .. } => None,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_trees::perfectly_symmetrizable;

    #[test]
    fn probes_are_load_bearing_on_the_double_spider() {
        // The headline ablation finding (recorded in docs/design-notes.md §D7):
        // without the bw(j)/cbw(j) probes the two hub agents — whose phase
        // durations are identical (equal leg sums) — stay in perfect
        // lockstep on opposite halves of the tree, crossing the odd central
        // path forever without ever co-locating. The probes inject the
        // l_j ≠ l'_j length differences into the schedule (Lemma 4.3's
        // mechanism) and the full algorithm meets.
        let (t, a, b) = probe_ablation_instance();
        assert!(
            !perfectly_symmetrizable(&t, a, b),
            "the instance must be feasible — failing it is the ablated agent's fault"
        );
        let results = compare_variants(&t, a, b, 30_000_000);
        let by_name = |n: &str| results.iter().find(|r| r.variant == n).unwrap().clone();
        assert!(by_name("full").met, "the paper's algorithm must meet");
        assert!(!by_name("no-probes").met, "without the probes the agents stay mirrored forever");
        assert!(!by_name("minimal").met, "a fortiori with Synchro also removed");
    }

    #[test]
    fn synchro_is_redundant_with_a_synchronous_explo() {
        // Implementation note (recorded in docs/design-notes.md §D7): the paper needs
        // Synchro because the Fact 2.1 black box's running time may vary;
        // our reconstruction-based Explo-bis takes exactly L + 2(n−1)
        // rounds, so the delay after Stage 1 is already |L − L'| and
        // ablating Synchro changes nothing observable.
        let (t, a, b) = probe_ablation_instance();
        let results = compare_variants(&t, a, b, 30_000_000);
        let by_name = |n: &str| results.iter().find(|r| r.variant == n).unwrap().clone();
        assert!(by_name("no-synchro").met, "probes alone suffice with our Explo");
    }

    #[test]
    fn ablations_agree_on_easy_instances() {
        // Central-node trees never reach Fig. 2: all variants identical.
        let t = rvz_trees::generators::spider(3, 3);
        for r in compare_variants(&t, 1, 7, 1_000_000) {
            assert!(r.met, "{} failed on a central-node tree", r.variant);
        }
    }

    #[test]
    fn symmetric_witness_labeling_defeats_everyone() {
        // A perfectly symmetrizable pair under its witness labeling is
        // infeasible for every variant (Fact 1.1); under other labelings of
        // the same tree meeting is allowed and does happen.
        let t = double_spider(&[2, 3], &[2, 3], 3);
        assert!(perfectly_symmetrizable(&t, 0, 1));
        let (symmetric_labeling, _flip) =
            rvz_trees::symmetry::symmetrization_witness(&t, 0, 1).expect("witness");
        for r in compare_variants(&symmetric_labeling, 0, 1, 2_000_000) {
            assert!(!r.met, "{} cannot beat Fact 1.1 on the witness labeling", r.variant);
        }
    }

    #[test]
    fn full_agent_meets_on_harder_double_spiders() {
        for (la, lb, c) in [
            (&[1usize, 4][..], &[2usize, 3][..], 5usize),
            (&[1, 2, 6], &[3, 3, 3], 3),
            (&[2, 5], &[3, 4], 7),
        ] {
            let t = double_spider(la, lb, c);
            if perfectly_symmetrizable(&t, 0, 1) {
                continue;
            }
            let results = compare_variants(&t, 0, 1, 60_000_000);
            assert!(
                results.iter().find(|r| r.variant == "full").unwrap().met,
                "full agent failed on {la:?} vs {lb:?} path {c}"
            );
        }
    }
}
