//! The arbitrary-delay baseline: `O(log n)`-bit rendezvous in trees for any
//! start delay θ — the tree-specialized stand-in for the general-graph
//! algorithm of \[14\] (Czyzowicz–Kosowski–Pelc, PODC'10); substitution B2 in
//! docs/design-notes.md §D5.
//!
//! Protocol:
//! 1. `Explo` (full-tree mode) reconstructs `T` and locates the agent.
//! 2. The agent computes the canonical **rank** `r ∈ [0, n)` of its start
//!    ([`rvz_trees::canon::canonical_ranks`]): two nodes share a rank iff
//!    the unique port-preserving flip of `T` exchanges them, so two agents
//!    on non-perfectly-symmetrizable starts always hold distinct ranks.
//! 3. Forever, with period `8n·q_r` (`q_r` = the `(r+2)`-th prime): be
//!    *active* for the first `4n` rounds (a double Euler tour from home,
//!    `4(n−1)` moves, padded with stays), then *passive* (wait at home).
//!
//! Why it meets under any finite delay: for ranks `r ≠ r'` the periods are
//! coprime multiples of `8n`, so the offsets of one agent's active windows
//! within the other's period sweep all `q` residues spaced `8n` apart; at
//! most one of those `q ≥ 3` offsets can overlap the other agent's `4n`-long
//! active zone, so some active window falls entirely inside a passive window
//! — and a full Euler tour visits the waiting agent's node. A never-started
//! or still-exploring peer sits still even longer. Memory beyond Explo:
//! counters bounded by `8n·q_r = O(n² log n)`, i.e. `O(log n)` bits.

use crate::primes::nth_prime;
use rvz_agent::meter::bits_for;
use rvz_agent::model::{bw_exit, Action, Agent, Obs, Step, SubAgent};
use rvz_explore::ExploBis;
use rvz_trees::canon::canonical_ranks;

#[derive(Debug, Clone)]
enum BPhase {
    /// Boxed: the reconstruction state dwarfs the schedule counters.
    Explo(Box<ExploBis>),
    Schedule {
        /// Position within the current period, in `0..period`.
        pos: u64,
        /// `8n·q_r`.
        period: u64,
        /// Moves still owed in the current active tour (`4(n−1)` at window
        /// start).
        tour_moves_left: u64,
        n: u64,
        rank: u64,
        q: u64,
    },
}

/// The delay-robust baseline agent.
#[derive(Debug, Clone)]
pub struct DelayRobustAgent {
    phase: BPhase,
    explo_charged: u64,
    explo_measured: u64,
}

impl Default for DelayRobustAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayRobustAgent {
    pub fn new() -> Self {
        DelayRobustAgent {
            phase: BPhase::Explo(Box::new(ExploBis::full())),
            explo_charged: 0,
            explo_measured: 0,
        }
    }

    /// The canonical rank of this agent's start, once known.
    pub fn rank(&self) -> Option<u64> {
        match &self.phase {
            BPhase::Explo(_) => None,
            BPhase::Schedule { rank, .. } => Some(*rank),
        }
    }

    /// Charged memory: Explo per the Fact 2.1 contract + measured schedule
    /// counters — the `O(log n)` of \[14\].
    pub fn memory_bits_charged(&self) -> u64 {
        self.explo_charged + self.schedule_bits()
    }

    /// Fully measured memory (reconstruction scratch included).
    pub fn memory_bits_measured(&self) -> u64 {
        self.explo_measured + self.schedule_bits()
    }

    fn schedule_bits(&self) -> u64 {
        match &self.phase {
            BPhase::Explo(_) => 1,
            BPhase::Schedule { period, n, rank, q, .. } => {
                bits_for(*period) + bits_for(*n) + bits_for(*rank) + bits_for(*q) + 1
            }
        }
    }

    /// Memory the automaton must be provisioned with for trees of at most
    /// `n` nodes — the `Θ(log n)` of the arbitrary-delay scenario (its
    /// necessity is Theorem 3.1). Worst case: rank `n − 1`, period
    /// `8n·q_{n+1}`.
    pub fn provisioned_bits(n: u64) -> u64 {
        let q_max = nth_prime(n as u32 + 2);
        4 * bits_for(n)                      // Explo (Fact 2.1 contract)
            + bits_for(8 * n * q_max)        // period counter
            + bits_for(n)                    // n itself
            + bits_for(n - 1)                // rank
            + bits_for(q_max)                // q_r
            + 1
    }
}

impl Agent for DelayRobustAgent {
    fn act(&mut self, obs: Obs) -> Action {
        loop {
            match &mut self.phase {
                BPhase::Explo(e) => match e.step(obs) {
                    Step::Done => {
                        let res = e.result().expect("Explo finished");
                        self.explo_charged = res.charged_bits();
                        self.explo_measured = res.measured_bits();
                        let n = res.nu;
                        // Rank of the agent's start (= node 0 of its own
                        // reconstruction; ranks are labeling-canonical, so
                        // both agents' computations agree physically).
                        let rank = canonical_ranks(&res.tprime)[0];
                        let q = nth_prime(rank as u32 + 2);
                        self.phase = BPhase::Schedule {
                            pos: 0,
                            period: 8 * n * q,
                            tour_moves_left: 4 * (n - 1),
                            n,
                            rank,
                            q,
                        };
                        continue;
                    }
                    Step::Move(p) => return Action::Move(p),
                    Step::Stay => return Action::Stay,
                },
                BPhase::Schedule { pos, period, tour_moves_left, n, .. } => {
                    let active = *pos < 4 * *n;
                    let action = if active && *tour_moves_left > 0 {
                        *tour_moves_left -= 1;
                        // Double Euler tour: plain basic walk; after
                        // 2(n−1) moves it closes and restarts, so 4(n−1)
                        // consecutive moves end at home.
                        Action::Move(bw_exit(obs.entry, obs.degree))
                    } else {
                        Action::Stay
                    };
                    *pos += 1;
                    if *pos == *period {
                        *pos = 0;
                        *tour_moves_left = 4 * (*n - 1);
                    }
                    return action;
                }
            }
        }
    }

    fn memory_bits(&self) -> u64 {
        self.memory_bits_charged()
    }

    fn name(&self) -> &'static str {
        "delay-robust-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_sim::{run_pair, PairConfig};
    use rvz_trees::generators::{
        colored_line_center_zero, line, random_relabel, random_tree, spider,
    };
    use rvz_trees::perfectly_symmetrizable;

    fn budget(n: u64) -> u64 {
        // Two full periods of the slowest agent's schedule, conservatively:
        // q ≤ prime(n+2) ≤ 16n for small n.
        8 * n * (16 * n.max(8)) * 4 + 100_000
    }

    #[test]
    fn meets_on_lines_for_many_delays() {
        for n in [3u64, 6, 9] {
            let t = line(n as usize);
            for delay in [0u64, 1, 3, 17, 1000] {
                for (a, b) in [(0u32, 1u32), (0, (n - 1) as u32), (1, (n - 1) as u32)] {
                    if perfectly_symmetrizable(&t, a, b) {
                        continue;
                    }
                    let mut x = DelayRobustAgent::new();
                    let mut y = DelayRobustAgent::new();
                    let run =
                        run_pair(&t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget(n)));
                    assert!(run.outcome.met(), "n={n} delay={delay} pair=({a},{b})");
                }
            }
        }
    }

    #[test]
    fn meets_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..8 {
            let n = 12usize;
            let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
            for delay in [0u64, 5, 113] {
                let (a, b) = (0u32, (n - 1) as u32);
                if perfectly_symmetrizable(&t, a, b) {
                    continue;
                }
                let mut x = DelayRobustAgent::new();
                let mut y = DelayRobustAgent::new();
                let run = run_pair(
                    &t,
                    a,
                    b,
                    &mut x,
                    &mut y,
                    PairConfig::delayed(delay, budget(n as u64)),
                );
                assert!(run.outcome.met(), "delay={delay}");
            }
        }
    }

    #[test]
    fn meets_even_on_symmetric_labelings_with_asym_positions() {
        // Mirror-labeled even line, but positions NOT exchanged by the flip:
        // ranks differ, the tournament resolves.
        let t = colored_line_center_zero(7); // 8 nodes, flip = mirror
        let (a, b) = (1u32, 2u32);
        assert!(!perfectly_symmetrizable(&t, a, b));
        for delay in [0u64, 2, 29] {
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget(8)));
            assert!(run.outcome.met(), "delay={delay}");
        }
    }

    #[test]
    fn mirror_pair_defeats_baseline_with_zero_delay() {
        // Perfectly symmetrizable pair on the mirror labeling: equal ranks,
        // mirrored schedules — no meeting (consistent with Fact 1.1).
        let t = colored_line_center_zero(7);
        let (a, b) = (0u32, 7u32);
        assert!(perfectly_symmetrizable(&t, a, b));
        let mut x = DelayRobustAgent::new();
        let mut y = DelayRobustAgent::new();
        let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::simultaneous(500_000));
        assert!(!run.outcome.met());
        assert_eq!(x.rank(), y.rank());
    }

    #[test]
    fn sleeping_forever_peer_is_found() {
        // Delay beyond the horizon: the active agent must still find the
        // sitter during its first active windows.
        let t = spider(3, 3);
        let mut x = DelayRobustAgent::new();
        let mut y = DelayRobustAgent::new();
        let run = run_pair(&t, 0, 5, &mut x, &mut y, PairConfig::delayed(u64::MAX, budget(10)));
        assert!(run.outcome.met());
    }

    #[test]
    fn memory_is_logarithmic() {
        for n in [8usize, 32, 128] {
            let t = line(n);
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let run = run_pair(
                &t,
                0,
                (n - 2) as u32,
                &mut x,
                &mut y,
                PairConfig::simultaneous(budget(n as u64)),
            );
            assert!(run.outcome.met(), "n={n}");
            let bits = x.memory_bits_charged().max(y.memory_bits_charged());
            // O(log n) with a modest constant: period ≤ 8n·q, q = O(n log n).
            assert!(bits <= 8 * rvz_agent::bits_for(n as u64) + 40, "n={n}: {bits} bits");
        }
    }
}
