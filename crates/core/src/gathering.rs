//! Gathering — the `k ≥ 2` agent extension the paper names as the natural
//! generalization of rendezvous (§1.3, refs [20, 28, 33, 37]).
//!
//! The Theorem 4.1 agent generalizes to `k` agents *for free* on every tree
//! whose contraction `T'` is **not** symmetric: Stage 2 sends every copy to
//! the same canonical node (the central node of `T'`, or the canonical
//! extremity of its central edge), where they all wait — co-location of all
//! `k` follows from co-location with the waiting point.
//!
//! On symmetric contractions the Figure-2 machinery is intrinsically
//! pairwise (the `prime` protocol meets *two* ends of the rendezvous path),
//! so `k`-gathering is not guaranteed there; [`gatherable`] reports which
//! regime a tree is in. This matches the literature: gathering many
//! anonymous agents on symmetric topologies needs extra assumptions
//! (tokens, multiplicity detection, …) that the paper's model excludes.

use crate::tree_agent::TreeRendezvousAgent;
use rvz_explore::{ExploBis, TprimeShape};
use rvz_sim::{run_ensemble_fsa, Cursor, EnsembleRun, EnsembleSchedule};
use rvz_trees::{NodeId, Tree};

/// Can the Theorem 4.1 agent gather *any* number of copies on this tree?
/// True iff the contraction `T'` has a central node or an asymmetric
/// central edge (every copy converges to one canonical waiting node).
pub fn gatherable(t: &Tree) -> bool {
    // Run Explo-bis virtually from any degree-≠2 node to classify T'.
    let start = (0..t.num_nodes() as NodeId)
        .find(|&v| t.degree(v) != 2)
        .expect("trees have non-degree-2 nodes");
    let mut e = ExploBis::new();
    let mut cur = Cursor::new(start);
    loop {
        use rvz_agent::model::{Action, Step, SubAgent};
        match e.step(cur.obs(t)) {
            Step::Done => break,
            Step::Move(p) => {
                cur.apply(t, Action::Move(p));
            }
            Step::Stay => {}
        }
    }
    !matches!(e.result().expect("explo finished").shape, TprimeShape::CentralEdgeSym { .. })
}

/// Gathers `k` copies of the Theorem 4.1 agent from the given starts
/// (simultaneous start). On [`gatherable`] trees this succeeds for all
/// distinct starts; on symmetric contractions it degrades to best-effort.
pub fn gather(t: &Tree, starts: &[NodeId], max_rounds: u64) -> EnsembleRun {
    let mut agents: Vec<TreeRendezvousAgent> =
        starts.iter().map(|_| TreeRendezvousAgent::new()).collect();
    let schedule = EnsembleSchedule::simultaneous(starts.len());
    run_ensemble_fsa(t, starts, &mut agents, &schedule, max_rounds, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_sim::Outcome;
    use rvz_trees::generators::{caterpillar, line, spider, star};

    #[test]
    fn stars_and_spiders_are_gatherable() {
        assert!(gatherable(&star(5)));
        assert!(gatherable(&spider(3, 4)));
        assert!(gatherable(&spider(5, 2)));
    }

    #[test]
    fn paths_are_not_gatherable() {
        // Contraction of any path is a single (symmetric) edge.
        assert!(!gatherable(&line(9)));
        assert!(!gatherable(&line(10)));
    }

    #[test]
    fn gathers_three_agents_on_a_spider() {
        let t = spider(3, 3);
        let run = gather(&t, &[1, 5, 9], 100_000);
        match run.outcome {
            Outcome::Met { node, .. } => {
                // The hub is T''s central node: everyone waits there.
                assert_eq!(node, 0);
            }
            Outcome::Timeout { .. } => panic!("spider gathering must succeed"),
        }
    }

    #[test]
    fn gathers_five_agents_on_a_star() {
        let t = star(6);
        let run = gather(&t, &[1, 2, 3, 5, 6], 100_000);
        assert!(matches!(run.outcome, Outcome::Met { node: 0, .. }));
    }

    #[test]
    fn gathers_on_asymmetric_caterpillar() {
        let t = caterpillar(4, &[2, 0, 0, 3]);
        assert!(gatherable(&t));
        let leaves = t.leaves();
        let run = gather(&t, &leaves[..4.min(leaves.len())], 1_000_000);
        assert!(matches!(run.outcome, Outcome::Met { .. }));
    }

    #[test]
    fn pairwise_rendezvous_still_works_where_gathering_does_not() {
        // On a path (symmetric T'), k = 2 still meets (Theorem 4.1), even
        // though k ≥ 3 has no guarantee.
        let t = line(5);
        let run = gather(&t, &[0, 2], 20_000_000);
        assert!(matches!(run.outcome, Outcome::Met { .. }));
    }
}
