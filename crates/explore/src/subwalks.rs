//! Reusable walk sub-procedures (`SubAgent`s) used by the exploration and
//! rendezvous agents: the paper's `bw(j)`, `cbw(j)` (§4.1), and the central
//! path crossing.
//!
//! All of them count *visits to nodes of degree ≠ 2* ("T′-nodes"), which is
//! how the paper's automata position themselves inside the contraction while
//! physically walking the full tree.

use rvz_agent::model::{bw_exit, cbw_exit, Obs, Step, SubAgent};
use rvz_trees::Port;

/// `bw(j)`: perform the basic walk until `j` nodes of degree ≠ 2 have been
/// visited, then stop *at* the `j`-th such node. `bw(0)` does nothing.
///
/// The first exit is port 0 (the basic walk's start rule).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BwCounted {
    target: u64,
    seen: u64,
    started: bool,
}

impl BwCounted {
    pub fn new(target: u64) -> Self {
        BwCounted { target, seen: 0, started: false }
    }

    /// Number of T′-visits still owed.
    pub fn remaining(&self) -> u64 {
        self.target - self.seen
    }
}

impl SubAgent for BwCounted {
    fn step(&mut self, obs: Obs) -> Step {
        if !self.started {
            if self.target == 0 {
                return Step::Done;
            }
            self.started = true;
            return Step::Move(0);
        }
        if obs.degree != 2 {
            self.seen += 1;
            if self.seen >= self.target {
                return Step::Done;
            }
        }
        Step::Move(bw_exit(obs.entry, obs.degree))
    }
}

/// `cbw(j)`: counter basic walk until `j` nodes of degree ≠ 2 have been
/// visited. Two start modes (§4.1 and docs/design-notes.md §D6):
///
/// * [`CbwCounted::reversing`] — executed right after a `bw(j)`: the first
///   exit re-traverses the edge just used (turn-around: exit = entry port),
///   then follows the `(i − 1) mod d` rule; retraces `bw(j)` exactly.
/// * [`CbwCounted::standalone`] — reverses a *closed* basic-walk tour from
///   its base node: the first exit is `d − 1` (the port by which the forward
///   tour made its final entry), then `(i − 1) mod d`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CbwCounted {
    target: u64,
    seen: u64,
    started: bool,
    turn_around: bool,
}

impl CbwCounted {
    pub fn reversing(target: u64) -> Self {
        CbwCounted { target, seen: 0, started: false, turn_around: true }
    }

    pub fn standalone(target: u64) -> Self {
        CbwCounted { target, seen: 0, started: false, turn_around: false }
    }
}

impl SubAgent for CbwCounted {
    fn step(&mut self, obs: Obs) -> Step {
        if !self.started {
            if self.target == 0 {
                return Step::Done;
            }
            self.started = true;
            let exit = if self.turn_around {
                obs.entry.expect("turn-around requires a preceding move")
            } else {
                cbw_exit(None, obs.degree)
            };
            return Step::Move(exit);
        }
        if obs.degree != 2 {
            self.seen += 1;
            if self.seen >= self.target {
                return Step::Done;
            }
        }
        Step::Move(cbw_exit(obs.entry, obs.degree))
    }
}

/// Crossing of the central path `C`: leave by `first_port`, then walk
/// straight through degree-2 nodes until reaching a node of degree ≠ 2 (the
/// other extremity of `C`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CrossPath {
    first_port: Port,
    started: bool,
}

impl CrossPath {
    pub fn new(first_port: Port) -> Self {
        CrossPath { first_port, started: false }
    }
}

impl SubAgent for CrossPath {
    fn step(&mut self, obs: Obs) -> Step {
        if !self.started {
            self.started = true;
            return Step::Move(self.first_port);
        }
        if obs.degree != 2 {
            return Step::Done;
        }
        Step::Move(bw_exit(obs.entry, obs.degree))
    }
}

/// Idle for a fixed number of rounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Wait {
    remaining: u64,
}

impl Wait {
    pub fn rounds(remaining: u64) -> Self {
        Wait { remaining }
    }
}

impl SubAgent for Wait {
    fn step(&mut self, _obs: Obs) -> Step {
        if self.remaining == 0 {
            return Step::Done;
        }
        self.remaining -= 1;
        Step::Stay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_agent::model::{Action, Agent};
    use rvz_sim::Cursor;
    use rvz_trees::generators::{line, spider};
    use rvz_trees::Tree;

    /// Drives a single SubAgent until Done; returns (final cursor, rounds).
    fn drive(t: &Tree, start: u32, sub: &mut dyn SubAgent) -> (Cursor, u64) {
        let mut cur = Cursor::new(start);
        let mut rounds = 0u64;
        loop {
            match sub.step(cur.obs(t)) {
                Step::Done => return (cur, rounds),
                Step::Stay => {
                    cur.apply(t, Action::Stay);
                }
                Step::Move(p) => {
                    cur.apply(t, Action::Move(p));
                }
            }
            rounds += 1;
            assert!(rounds < 1_000_000, "sub-walk did not terminate");
        }
    }

    /// Composite driver: run `a` then `b` (b sees the obs a finished on).
    fn drive_two(
        t: &Tree,
        start: u32,
        a: &mut dyn SubAgent,
        b: &mut dyn SubAgent,
    ) -> (Cursor, u64) {
        let mut cur = Cursor::new(start);
        let mut rounds = 0u64;
        let mut phase = 0;
        loop {
            let obs = cur.obs(t);
            let step = if phase == 0 {
                match a.step(obs) {
                    Step::Done => {
                        phase = 1;
                        b.step(obs)
                    }
                    s => s,
                }
            } else {
                b.step(obs)
            };
            match step {
                Step::Done => return (cur, rounds),
                Step::Stay => {
                    cur.apply(t, Action::Stay);
                }
                Step::Move(p) => {
                    cur.apply(t, Action::Move(p));
                }
            }
            rounds += 1;
            assert!(rounds < 1_000_000, "composite walk did not terminate");
        }
    }

    #[test]
    fn bw_counted_full_tour_returns_home() {
        // Spider: ν = legs+1 T′ nodes; a full tour = 2(ν−1) T′ visits and
        // 2(n−1) physical rounds.
        let t = spider(3, 4);
        let nu = 4u64;
        let mut bw = BwCounted::new(2 * (nu - 1));
        let (cur, rounds) = drive(&t, 0, &mut bw);
        assert_eq!(cur.node, 0);
        assert_eq!(rounds, 2 * (t.num_nodes() as u64 - 1));
    }

    #[test]
    fn bw_zero_is_noop() {
        let t = line(5);
        let mut bw = BwCounted::new(0);
        let (cur, rounds) = drive(&t, 2, &mut bw);
        assert_eq!((cur.node, rounds), (2, 0));
    }

    #[test]
    fn bw_then_cbw_returns_to_origin() {
        let t = spider(3, 3);
        for j in 1..=6u64 {
            let mut bw = BwCounted::new(j);
            let mut cbw = CbwCounted::reversing(j);
            let (cur, rounds) = drive_two(&t, 0, &mut bw, &mut cbw);
            assert_eq!(cur.node, 0, "j={j}");
            // Forward and backward legs have the same physical length.
            assert_eq!(rounds % 2, 0, "j={j}");
        }
    }

    #[test]
    fn standalone_cbw_tour_reverses_bw_tour() {
        // A standalone cbw full tour from a node retraces the bw full tour
        // backwards: same duration, same endpoint (home).
        let t = spider(4, 2);
        let nu = 5u64;
        let mut fwd = BwCounted::new(2 * (nu - 1));
        let (_, fwd_rounds) = drive(&t, 0, &mut fwd);
        let mut rev = CbwCounted::standalone(2 * (nu - 1));
        let (cur, rev_rounds) = drive(&t, 0, &mut rev);
        assert_eq!(cur.node, 0);
        assert_eq!(fwd_rounds, rev_rounds);
    }

    #[test]
    fn standalone_cbw_visits_same_nodes_as_bw() {
        let t = spider(3, 2);
        let nu = 4u64;
        // Record the forward tour's physical node sequence.
        let mut seq_fwd = vec![0u32];
        let mut cur = Cursor::new(0);
        let mut bw = BwCounted::new(2 * (nu - 1));
        loop {
            match bw.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                    seq_fwd.push(cur.node);
                }
                Step::Stay => unreachable!(),
            }
        }
        // Record the standalone reverse tour.
        let mut seq_rev = vec![0u32];
        let mut cur = Cursor::new(0);
        let mut cbw = CbwCounted::standalone(2 * (nu - 1));
        loop {
            match cbw.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                    seq_rev.push(cur.node);
                }
                Step::Stay => unreachable!(),
            }
        }
        let mut expected = seq_fwd.clone();
        expected.reverse();
        assert_eq!(seq_rev, expected, "cbw tour must be the exact reversal");
    }

    #[test]
    fn cross_path_walks_the_line() {
        let t = line(8); // leaves 0 and 7 are "extremities"
        let mut cross = CrossPath::new(0);
        let (cur, rounds) = drive(&t, 7, &mut cross);
        assert_eq!(cur.node, 0);
        assert_eq!(rounds, 7);
    }

    #[test]
    fn wait_counts_rounds() {
        let t = line(3);
        let mut w = Wait::rounds(5);
        let (cur, rounds) = drive(&t, 1, &mut w);
        assert_eq!((cur.node, rounds), (1, 5));
    }

    #[test]
    fn cross_path_traverses_the_central_path_of_a_double_spider() {
        // Hubs 0 and 1 joined by a 3-edge path: crossing from hub 0 via its
        // path port (index = number of legs) lands on hub 1 in 3 rounds.
        let t = rvz_trees::generators::double_spider(&[1, 4], &[2, 3], 3);
        let mut cross = CrossPath::new(2); // hub 0's port 2 = the path
        let (cur, rounds) = drive(&t, 0, &mut cross);
        assert_eq!(cur.node, 1);
        assert_eq!(rounds, 3);
        // And back.
        let mut back = CrossPath::new(2);
        let (cur, rounds) = drive(&t, 1, &mut back);
        assert_eq!(cur.node, 0);
        assert_eq!(rounds, 3);
    }

    #[test]
    fn bw_counted_remaining_decreases() {
        let t = spider(3, 1);
        let mut bw = BwCounted::new(3);
        assert_eq!(bw.remaining(), 3);
        let mut cur = Cursor::new(0);
        // Drive two T'-visits by hand.
        let mut visits = 0;
        while visits < 2 {
            match bw.step(cur.obs(&t)) {
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                    if t.degree(cur.node) != 2 {
                        visits += 1;
                    }
                }
                Step::Stay => {}
                Step::Done => panic!("not done yet"),
            }
        }
        // `remaining` lags one behind the physical cursor (counted at the
        // NEXT step call), so poke once more:
        let _ = bw.step(cur.obs(&t));
        assert!(bw.remaining() <= 2);
    }

    /// Adapter making a single SubAgent a full Agent (stays forever after).
    struct SubAsAgent<S: SubAgent>(S, bool);

    impl<S: SubAgent> Agent for SubAsAgent<S> {
        fn act(&mut self, obs: Obs) -> Action {
            if self.1 {
                return Action::Stay;
            }
            match self.0.step(obs) {
                Step::Done => {
                    self.1 = true;
                    Action::Stay
                }
                Step::Stay => Action::Stay,
                Step::Move(p) => Action::Move(p),
            }
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    #[test]
    fn subagent_composes_with_simulator() {
        let t = line(6);
        let mut agent = SubAsAgent(BwCounted::new(1), false);
        let run = rvz_sim::run_single(&t, 0, &mut agent, 10, true);
        // From leaf 0, one T′-visit = reach the other leaf after 5 moves.
        assert_eq!(run.trace.unwrap()[5], 5);
    }
}
