//! # rvz-explore
//!
//! Walks and exploration procedures of Fraigniaud & Pelc (SPAA 2010):
//!
//! * [`subwalks`] — the paper's `bw(j)` / `cbw(j)` counted walks (§4.1), the
//!   central-path crossing, and idle blocks, as composable
//!   [`rvz_agent::SubAgent`]s;
//! * [`explo`] — `Explo` / `Explo-bis` (Fact 2.1): one basic-walk period
//!   reconstructs the contraction `T'` (the basic walk is a DFS), yielding
//!   `ν`, `ℓ`, the Stage-2 classification (central node / asymmetric /
//!   symmetric central edge) and the basic-walk step counts to the
//!   landmarks;
//! * [`synchro`] — procedure `Synchro` (Sub-stage 2.1) with Claim 4.2's
//!   delay guarantee.
//!
//! ```
//! use rvz_agent::{Action, Step, SubAgent};
//! use rvz_explore::ExploBis;
//! use rvz_sim::Cursor;
//! use rvz_trees::generators::spider;
//!
//! // Fact 2.1: one basic-walk period from v̂ reconstructs the contraction.
//! let t = spider(3, 4); // three legs of four edges: 13 nodes, ℓ = 3
//! let mut explo = ExploBis::new();
//! let mut cur = Cursor::new(0); // the hub has degree ≠ 2, so v̂ = start
//! loop {
//!     match explo.step(cur.obs(&t)) {
//!         Step::Done => break,
//!         Step::Move(p) => {
//!             cur.apply(&t, Action::Move(p));
//!         }
//!         Step::Stay => {
//!             cur.apply(&t, Action::Stay);
//!         }
//!     }
//! }
//! let res = explo.into_result().unwrap();
//! assert_eq!((res.nu, res.leaves), (4, 3)); // T′ is a star: hub + 3 leaves
//! ```

pub mod explo;
pub mod subwalks;
pub mod synchro;

pub use explo::{ExploBis, ExploMode, ExploResult, TprimeShape};
pub use subwalks::{BwCounted, CbwCounted, CrossPath, Wait};
pub use synchro::Synchro;
