//! # rvz-explore
//!
//! Walks and exploration procedures of Fraigniaud & Pelc (SPAA 2010):
//!
//! * [`subwalks`] — the paper's `bw(j)` / `cbw(j)` counted walks (§4.1), the
//!   central-path crossing, and idle blocks, as composable
//!   [`rvz_agent::SubAgent`]s;
//! * [`explo`] — `Explo` / `Explo-bis` (Fact 2.1): one basic-walk period
//!   reconstructs the contraction `T'` (the basic walk is a DFS), yielding
//!   `ν`, `ℓ`, the Stage-2 classification (central node / asymmetric /
//!   symmetric central edge) and the basic-walk step counts to the
//!   landmarks;
//! * [`synchro`] — procedure `Synchro` (Sub-stage 2.1) with Claim 4.2's
//!   delay guarantee.

pub mod explo;
pub mod subwalks;
pub mod synchro;

pub use explo::{ExploBis, ExploMode, ExploResult, TprimeShape};
pub use subwalks::{BwCounted, CbwCounted, CrossPath, Wait};
pub use synchro::Synchro;
