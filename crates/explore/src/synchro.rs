//! Procedure `Synchro` (Sub-stage 2.1, §4.1): re-synchronization of the two
//! agents after `Explo-bis`.
//!
//! From `v̂`, perform one full basic-walk period (`2(ν−1)` `T'`-edge
//! traversals, ending back at `v̂`), inserting a full `Explo-bis(w)` walk
//! (one basic-walk period from `w`, `2(n−1)` rounds) at every visited
//! `T'`-node *except* the final return to `v̂`.
//!
//! Claim 4.2: since both agents perform identical multisets of actions in
//! different orders, they finish `Synchro` with delay exactly `|L − L'|`,
//! where `L` is the length of the basic walk from the original start `v`
//! to `v̂`.

use rvz_agent::model::{bw_exit, Obs, Step, SubAgent};

/// The `Synchro` sub-agent. Requires `ν` (from [`crate::explo::ExploBis`]).
#[derive(Debug, Clone)]
pub struct Synchro {
    /// Total `T'` arrivals the main walk owes: `2(ν−1)`.
    main_target: u64,
    /// `T'` arrivals of the main walk so far.
    main_seen: u64,
    /// In-progress insertion: remaining `T'` arrivals of the sub-tour, and
    /// the main walk's suspended entry port at the insertion node.
    insertion: Option<(u64, u32)>,
    started: bool,
    rounds: u64,
}

impl Synchro {
    pub fn new(nu: u64) -> Self {
        assert!(nu >= 2, "contractions have at least two nodes");
        Synchro {
            main_target: 2 * (nu - 1),
            main_seen: 0,
            insertion: None,
            started: false,
            rounds: 0,
        }
    }

    /// Rounds consumed so far (for Claim 4.2 instrumentation).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl SubAgent for Synchro {
    fn step(&mut self, obs: Obs) -> Step {
        if !self.started {
            self.started = true;
            self.rounds += 1;
            // Main walk's first move: basic-walk start (port 0).
            return Step::Move(0);
        }
        if let Some((remaining, suspended_entry)) = self.insertion {
            // Inside an inserted Explo-bis(w) tour.
            if obs.degree != 2 {
                let remaining = remaining - 1;
                if remaining == 0 {
                    // Insertion complete: we are back at w. Resume the main
                    // walk as if we had just arrived by `suspended_entry`.
                    self.insertion = None;
                    self.rounds += 1;
                    return Step::Move(bw_exit(Some(suspended_entry), obs.degree));
                }
                self.insertion = Some((remaining, suspended_entry));
            }
            self.rounds += 1;
            return Step::Move(bw_exit(obs.entry, obs.degree));
        }
        // Main walk.
        if obs.degree != 2 {
            self.main_seen += 1;
            if self.main_seen >= self.main_target {
                // Final return to v̂: no insertion, Synchro is complete.
                return Step::Done;
            }
            // Insert a full Explo-bis(w) tour from this node before
            // continuing the main walk.
            let entry = obs.entry.expect("main-walk arrivals have an entry port");
            self.insertion = Some((self.main_target, entry));
            self.rounds += 1;
            return Step::Move(0); // sub-tour starts like any basic walk
        }
        self.rounds += 1;
        Step::Move(bw_exit(obs.entry, obs.degree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explo::ExploBis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_agent::model::Action;
    use rvz_sim::Cursor;
    use rvz_trees::generators::{caterpillar, line, random_relabel, random_tree, spider};
    use rvz_trees::{NodeId, Tree};

    /// Runs Explo-bis then Synchro from `start`; returns
    /// (v̂, total rounds, leaf-seek length L, ν).
    fn run_explo_synchro(t: &Tree, start: NodeId) -> (NodeId, u64, u64, u64) {
        let mut cur = Cursor::new(start);
        let mut rounds = 0u64;
        let mut explo = ExploBis::new();
        let (nu, leaf_len) = loop {
            match explo.step(cur.obs(t)) {
                Step::Done => {
                    let r = explo.result().unwrap();
                    break (r.nu, r.leaf_seek_len);
                }
                Step::Move(p) => {
                    cur.apply(t, Action::Move(p));
                    rounds += 1;
                }
                Step::Stay => {
                    cur.apply(t, Action::Stay);
                    rounds += 1;
                }
            }
        };
        let vhat = cur.node;
        let mut sync = Synchro::new(nu);
        loop {
            match sync.step(cur.obs(t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(t, Action::Move(p));
                    rounds += 1;
                }
                Step::Stay => {
                    cur.apply(t, Action::Stay);
                    rounds += 1;
                }
            }
            assert!(rounds < 100_000_000, "Synchro did not terminate");
        }
        assert_eq!(cur.node, vhat, "Synchro must end back at v̂");
        (vhat, rounds, leaf_len, nu)
    }

    #[test]
    fn synchro_duration_formula() {
        // Duration of Explo-bis + Synchro = L + 2(n−1) + 2(ν−1)·2(n−1):
        // the main walk is one full period and each of the 2(ν−1)−1
        // insertions is one full period.
        for t in [spider(3, 3), caterpillar(4, &[1, 0, 2, 1]), line(7)] {
            let n = t.num_nodes() as u64;
            for start in 0..t.num_nodes() as NodeId {
                let (_, rounds, leaf_len, nu) = run_explo_synchro(&t, start);
                assert_eq!(
                    rounds,
                    leaf_len + 2 * (n - 1) + 2 * (nu - 1) * 2 * (n - 1),
                    "start={start}"
                );
            }
        }
    }

    #[test]
    fn claim_4_2_delay_is_leaf_seek_difference() {
        // Two agents starting simultaneously anywhere finish Synchro with
        // delay exactly |L − L'|.
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..20 {
            let t = random_relabel(&random_tree(18, &mut rng), &mut rng);
            let n = t.num_nodes() as NodeId;
            for (u, v) in [(0u32, n - 1), (1, n / 2), (2, n - 2)] {
                if u == v {
                    continue;
                }
                let (_, r_u, l_u, _) = run_explo_synchro(&t, u);
                let (_, r_v, l_v, _) = run_explo_synchro(&t, v);
                assert_eq!(r_u.abs_diff(r_v), l_u.abs_diff(l_v), "Claim 4.2 violated at ({u},{v})");
            }
        }
    }

    #[test]
    fn synchro_visits_every_tprime_node() {
        let t = spider(4, 2);
        let mut cur = Cursor::new(0);
        let mut explo = ExploBis::new();
        loop {
            match explo.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                }
                Step::Stay => {}
            }
        }
        let nu = explo.result().unwrap().nu;
        let mut sync = Synchro::new(nu);
        let mut visited = vec![false; t.num_nodes()];
        loop {
            match sync.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(&t, Action::Move(p));
                    visited[cur.node as usize] = true;
                }
                Step::Stay => {}
            }
        }
        assert!(visited.iter().all(|&b| b), "Synchro tours the whole tree");
    }
}
