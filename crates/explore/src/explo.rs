//! `Explo` / `Explo-bis` — the exploration procedure of Fact 2.1, §2.2/§4.1.
//!
//! Contract (per the paper): starting from `v`, the agent walks, returns to
//! `v̂` (`v` itself if `deg(v) ≠ 2`, else the first leaf reached by a basic
//! walk), and afterwards knows, about the contraction `T'`:
//! * its node count `ν` and leaf count `ℓ`;
//! * whether it has a central node, an asymmetric central edge, or a
//!   symmetric central edge;
//! * the minimum number of basic-walk steps (counted in `T'`-node visits)
//!   from `v̂` to the relevant landmark (central node / canonical extremity /
//!   *farthest* extremity), and the landmark's port toward the central edge.
//!
//! Implementation (substitution S1, docs/design-notes.md §D4): the basic walk in a tree
//! is a depth-first traversal with cyclic child order, so one full period of
//! observations — entry port and degree, the only legal inputs — determines
//! `T'` exactly. The walker reconstructs `T'` online with a DFS stack,
//! detects the period's completion structurally (return to the root through
//! its last subtree), and derives every Fact 2.1 output from the
//! reconstruction. The walk itself (one basic-walk period, `2(n−1)` rounds,
//! ending at `v̂`) matches the automaton of \[27\] at the contract level; the
//! internal scratch is `Θ(ν log ν)` bits instead of `O(log ν)`, which is why
//! memory reports split into *measured* and *charged* (Fact 2.1) figures.

use rvz_agent::meter::bits_for;
use rvz_agent::model::{bw_exit, Obs, Step, SubAgent};
use rvz_trees::canon::canon_ports;
use rvz_trees::center::{center, Center};
use rvz_trees::tree::{Edge, NodeId, Port, Tree};

/// Where the Stage-2 rendezvous should converge, as computed by `Explo-bis`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TprimeShape {
    /// `T'` has a central node: wait there.
    CentralNode {
        /// `T'` id of the central node.
        node: NodeId,
        /// First-visit index of the node on the basic walk from `v̂`
        /// (0 if `v̂` itself).
        steps: u64,
    },
    /// `T'` has a central edge but is not symmetric: wait at the canonical
    /// extremity (the one with the lexicographically smaller port-labeled
    /// half, so all agents choose the same node).
    CentralEdgeAsym {
        node: NodeId,
        steps: u64,
        /// Port at `node` toward the central edge.
        central_port: Port,
    },
    /// `T'` is symmetric: proceed to Stage 2.1/2.2 at the *farthest*
    /// extremity of the central edge.
    CentralEdgeSym {
        /// `T'` id of the farthest extremity (the one whose half does not
        /// contain `v̂`; the basic walk first enters it through the central
        /// edge).
        far: NodeId,
        steps_far: u64,
        /// Port at `far` toward the central edge.
        central_port_far: Port,
        /// The other extremity and its port toward the central edge.
        near: NodeId,
        central_port_near: Port,
    },
}

/// Everything `Explo-bis` has learned once it returns to `v̂`.
#[derive(Debug, Clone)]
pub struct ExploResult {
    /// The reconstructed contraction `T'`, with `v̂` as node 0.
    pub tprime: Tree,
    /// Number of `T'` nodes (`ν`).
    pub nu: u64,
    /// Number of leaves (`ℓ`), equal in `T` and `T'`.
    pub leaves: u64,
    /// First-visit index (in `T'`-node visits, 1-based; root ⇒ 0) of every
    /// `T'` node on the basic walk from `v̂`.
    pub first_visit: Vec<u64>,
    /// The Stage-2 classification.
    pub shape: TprimeShape,
    /// Physical length (in `T` edges) of the basic walk from the original
    /// start `v` to `v̂` — the paper's `L` (0 when `deg(v) ≠ 2`).
    pub leaf_seek_len: u64,
    /// Physical length of one full basic-walk period from `v̂`: `2(n−1)`.
    pub tour_len: u64,
}

impl ExploResult {
    /// Measured scratch of the reconstruction: the honest cost of storing
    /// `T'` (2 directed edges per `T'` edge, each holding a node id and a
    /// port) plus the DFS stack.
    pub fn measured_bits(&self) -> u64 {
        let id_bits = bits_for(self.nu);
        let port_bits = bits_for(self.tprime.max_degree() as u64);
        4 * (self.nu.saturating_sub(1)) * (id_bits + port_bits) + self.nu * id_bits
    }

    /// Charged memory per the Fact 2.1 contract: `O(log ν)` bits, reported
    /// as `4⌈log₂(ν+1)⌉` (constant documented in docs/design-notes.md §D4).
    pub fn charged_bits(&self) -> u64 {
        4 * bits_for(self.nu)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Waiting for the first `step` call.
    Fresh,
    /// Walking (basic walk) toward a leaf because the start has degree 2.
    LeafSeek,
    /// Reconstruction tour in progress.
    Tour,
    /// Finished; result available.
    Finished,
}

/// What the walker reconstructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploMode {
    /// `Explo-bis`: ignore degree-2 nodes, reconstruct the contraction `T'`
    /// (with the leaf-seek prelude for degree-2 starts).
    Contraction,
    /// Plain `Explo` on the full tree: every node is a landmark; no
    /// leaf-seek (`v̂ = v` always). Used by the arbitrary-delay baseline,
    /// which needs all of `T`.
    Full,
}

/// The `Explo-bis` sub-agent. Drive it with [`SubAgent::step`]; when it
/// returns [`Step::Done`] the agent stands at `v̂` and [`ExploBis::result`]
/// yields the reconstruction.
#[derive(Debug, Clone)]
pub struct ExploBis {
    mode: ExploMode,
    phase: Phase,
    leaf_seek_len: u64,
    tour_len: u64,
    /// Reconstruction state: adjacency of discovered `T'` nodes;
    /// `adj[id][port] = Some((peer, peer_port))`.
    adj: Vec<Vec<Option<(NodeId, Port)>>>,
    /// DFS stack of `T'` ids (root at the bottom).
    stack: Vec<NodeId>,
    /// First-visit index per discovered node.
    first_visit: Vec<u64>,
    /// Number of `T'`-node arrivals so far.
    visits: u64,
    /// The `T'` node and port we most recently exited through.
    last_exit: Option<(NodeId, Port)>,
    result: Option<ExploResult>,
}

impl Default for ExploBis {
    fn default() -> Self {
        Self::new()
    }
}

impl ExploBis {
    pub fn new() -> Self {
        Self::with_mode(ExploMode::Contraction)
    }

    /// Plain `Explo` reconstructing the full tree (for the baseline).
    pub fn full() -> Self {
        Self::with_mode(ExploMode::Full)
    }

    pub fn with_mode(mode: ExploMode) -> Self {
        ExploBis {
            mode,
            phase: Phase::Fresh,
            leaf_seek_len: 0,
            tour_len: 0,
            adj: Vec::new(),
            stack: Vec::new(),
            first_visit: Vec::new(),
            visits: 0,
            last_exit: None,
            result: None,
        }
    }

    pub fn result(&self) -> Option<&ExploResult> {
        self.result.as_ref()
    }

    pub fn into_result(self) -> Option<ExploResult> {
        self.result
    }

    /// Register the root `v̂` (degree known from the first tour observation).
    fn init_root(&mut self, degree: Port) {
        self.adj.push(vec![None; degree as usize]);
        self.first_visit.push(0);
        self.stack.push(0);
    }

    /// Process an arrival at a `T'` node (degree ≠ 2) during the tour.
    /// Returns `true` when the tour is complete.
    fn on_tprime_arrival(&mut self, entry: Port, degree: Port) -> bool {
        self.visits += 1;
        let (from, from_port) = self.last_exit.expect("tour arrivals follow an exit");
        match self.adj[from as usize][from_port as usize] {
            Some((peer, peer_port)) => {
                // Known edge ⇒ this is the DFS return to the parent.
                debug_assert_eq!(peer_port, entry, "edge ports are consistent");
                debug_assert_eq!(self.stack.last(), Some(&from));
                self.stack.pop();
                debug_assert_eq!(self.stack.last(), Some(&peer));
                // Tour completes on the return to the root through its last
                // port: the next basic-walk exit would restart the period.
                self.stack.len() == 1 && peer == 0 && entry == degree - 1
            }
            None => {
                // Fresh edge ⇒ a newly discovered child.
                let id = self.adj.len() as NodeId;
                self.adj.push(vec![None; degree as usize]);
                self.first_visit.push(self.visits);
                self.adj[from as usize][from_port as usize] = Some((id, entry));
                self.adj[id as usize][entry as usize] = Some((from, from_port));
                self.stack.push(id);
                false
            }
        }
    }

    /// Assemble the [`ExploResult`] once the tour has closed.
    fn finish(&mut self) {
        let nu = self.adj.len();
        let edges: Vec<Edge> = (0..nu as NodeId)
            .flat_map(|u| {
                self.adj[u as usize].iter().enumerate().filter_map(move |(p, slot)| {
                    let (v, pv) = slot.expect("tour closed ⇒ all ports explored");
                    (u < v).then_some(Edge { u, port_u: p as Port, v, port_v: pv })
                })
            })
            .collect();
        let tprime = Tree::from_edges(nu, &edges).expect("reconstruction is a tree");
        let shape = classify(&tprime, &self.first_visit);
        self.result = Some(ExploResult {
            nu: nu as u64,
            leaves: tprime.num_leaves() as u64,
            first_visit: std::mem::take(&mut self.first_visit),
            shape,
            leaf_seek_len: self.leaf_seek_len,
            tour_len: self.tour_len,
            tprime,
        });
        self.phase = Phase::Finished;
    }
}

/// Stage-2 classification of the reconstructed `T'` with root `v̂ = 0`.
fn classify(tprime: &Tree, first_visit: &[u64]) -> TprimeShape {
    match center(tprime) {
        Center::Node(c) => TprimeShape::CentralNode { node: c, steps: first_visit[c as usize] },
        Center::Edge(x, y) => {
            let px = tprime.port_towards(x, y).expect("adjacent");
            let py = tprime.port_towards(y, x).expect("adjacent");
            let cx = canon_ports(tprime, x, Some(y), None);
            let cy = canon_ports(tprime, y, Some(x), None);
            if cx == cy {
                // Symmetric: target the FARTHEST extremity — the one whose
                // half does not contain the root. The root's half owns the
                // extremity its path reaches first; with root == x or y the
                // far one is simply the other. In T'-bw terms the far
                // extremity is first entered THROUGH the central edge, hence
                // its first visit is later.
                let (far, near, p_far, p_near) =
                    if first_visit[x as usize] <= first_visit[y as usize] {
                        (y, x, py, px)
                    } else {
                        (x, y, px, py)
                    };
                TprimeShape::CentralEdgeSym {
                    far,
                    steps_far: first_visit[far as usize],
                    central_port_far: p_far,
                    near,
                    central_port_near: p_near,
                }
            } else {
                // Asymmetric: all agents pick the extremity with the smaller
                // (canon, port) key — a canonical, position-independent
                // choice (Fact 2.1's "same extremity x").
                let (node, central_port) = if (cx, px) < (cy, py) { (x, px) } else { (y, py) };
                TprimeShape::CentralEdgeAsym {
                    node,
                    steps: first_visit[node as usize],
                    central_port,
                }
            }
        }
    }
}

impl SubAgent for ExploBis {
    fn step(&mut self, obs: Obs) -> Step {
        loop {
            match self.phase {
                Phase::Fresh => {
                    if obs.degree == 2 && self.mode == ExploMode::Contraction {
                        self.phase = Phase::LeafSeek;
                        self.leaf_seek_len = 1;
                        return Step::Move(0);
                    }
                    self.phase = Phase::Tour;
                    self.init_root(obs.degree);
                    self.last_exit = Some((0, 0));
                    self.tour_len = 1;
                    return Step::Move(0);
                }
                Phase::LeafSeek => {
                    if obs.degree == 1 {
                        // Reached v̂ = v_leaf: begin the tour here.
                        self.phase = Phase::Tour;
                        self.init_root(obs.degree);
                        self.last_exit = Some((0, 0));
                        self.tour_len = 1;
                        return Step::Move(0);
                    }
                    self.leaf_seek_len += 1;
                    return Step::Move(bw_exit(obs.entry, obs.degree));
                }
                Phase::Tour => {
                    if obs.degree != 2 || self.mode == ExploMode::Full {
                        let entry = obs.entry.expect("tour arrivals have an entry port");
                        if self.on_tprime_arrival(entry, obs.degree) {
                            self.finish();
                            continue; // Phase::Finished returns Done
                        }
                        let exit = bw_exit(obs.entry, obs.degree);
                        let cur = *self.stack.last().expect("tour in progress");
                        self.last_exit = Some((cur, exit));
                        self.tour_len += 1;
                        return Step::Move(exit);
                    }
                    self.tour_len += 1;
                    return Step::Move(bw_exit(obs.entry, obs.degree));
                }
                Phase::Finished => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_agent::model::{Action, Agent};
    use rvz_sim::Cursor;
    use rvz_trees::generators::{
        caterpillar, colored_line_center_zero, complete_binary, line, random_relabel, random_tree,
        spider, star,
    };

    /// Drives ExploBis to completion; returns (result, final node, rounds).
    fn run_explo(t: &Tree, start: NodeId) -> (ExploResult, NodeId, u64) {
        let mut e = ExploBis::new();
        let mut cur = Cursor::new(start);
        let mut rounds = 0u64;
        loop {
            match e.step(cur.obs(t)) {
                Step::Done => break,
                Step::Move(p) => {
                    cur.apply(t, Action::Move(p));
                    rounds += 1;
                }
                Step::Stay => {
                    cur.apply(t, Action::Stay);
                    rounds += 1;
                }
            }
            assert!(rounds < 10_000_000, "Explo-bis did not terminate");
        }
        (e.into_result().unwrap(), cur.node, rounds)
    }

    #[test]
    fn reconstructs_spider_contraction() {
        let t = spider(3, 4);
        let (res, end, rounds) = run_explo(&t, 0);
        assert_eq!(end, 0, "must return to v̂ = start (degree ≠ 2)");
        assert_eq!(res.nu, 4);
        assert_eq!(res.leaves, 3);
        assert_eq!(rounds, 2 * (t.num_nodes() as u64 - 1));
        assert_eq!(res.leaf_seek_len, 0);
        // T' of a spider is a star; contraction ground truth agrees.
        let ground = rvz_trees::contract(&t);
        assert_eq!(res.tprime.num_nodes(), ground.tree.num_nodes());
        assert_eq!(res.tprime.num_leaves(), ground.tree.num_leaves());
    }

    #[test]
    fn degree2_start_walks_to_leaf_first() {
        let t = spider(3, 4);
        // Node 1 is inside leg 0 (degree 2): basic walk by port 0 goes
        // outward to the leg's leaf (node 4).
        let (res, end, _) = run_explo(&t, 1);
        assert!(res.leaf_seek_len > 0);
        assert_eq!(t.degree(end), 1, "v̂ must be a leaf");
        assert_eq!(res.nu, 4);
    }

    #[test]
    fn line_contraction_is_single_edge() {
        let t = line(9);
        let (res, end, _) = run_explo(&t, 0);
        assert_eq!(end, 0);
        assert_eq!(res.nu, 2);
        assert_eq!(res.leaves, 2);
        // Odd number of edges? line(9) has 8 edges: T' is a single edge, so
        // the center of T' is that edge and both halves are single nodes:
        // symmetric.
        assert!(matches!(res.shape, TprimeShape::CentralEdgeSym { .. }));
    }

    #[test]
    fn star_shape_is_central_node() {
        let t = star(5);
        let (res, _, _) = run_explo(&t, 2);
        assert_eq!(res.nu, 6);
        match res.shape {
            TprimeShape::CentralNode { steps, .. } => {
                // From a leaf, the hub is the first T'-visit.
                assert_eq!(steps, 1);
            }
            other => panic!("expected central node, got {other:?}"),
        }
    }

    #[test]
    fn complete_binary_contraction_has_central_edge() {
        // The root of a complete binary tree has degree 2 and vanishes in
        // T': the two half-trees hang from a central edge; with identical
        // canonical labelings the halves are symmetric.
        let t = complete_binary(3);
        let (res, _, _) = run_explo(&t, 1);
        assert_eq!(res.nu, t.num_nodes() as u64 - 1);
        assert!(matches!(
            res.shape,
            TprimeShape::CentralEdgeSym { .. } | TprimeShape::CentralEdgeAsym { .. }
        ));
    }

    #[test]
    fn first_visit_matches_virtual_basic_walk() {
        // Ground truth: simulate the basic walk on the contraction directly.
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let t = random_relabel(&random_tree(24, &mut rng), &mut rng);
            // Pick a start of degree ≠ 2 to keep v̂ = start.
            let start = (0..t.num_nodes() as NodeId).find(|&v| t.degree(v) != 2).unwrap();
            let (res, end, _) = run_explo(&t, start);
            assert_eq!(end, start);
            // Virtual walk on the reconstructed T' from its root 0: first
            // visits must match what the reconstruction recorded.
            let tp = &res.tprime;
            let mut first = vec![u64::MAX; tp.num_nodes()];
            first[0] = 0;
            let mut cur = Cursor::new(0);
            for step in 1..=2 * (tp.num_nodes() as u64 - 1) {
                let exit = bw_exit(cur.entry, tp.degree(cur.node));
                cur.apply(tp, Action::Move(exit));
                if first[cur.node as usize] == u64::MAX {
                    first[cur.node as usize] = step;
                }
            }
            assert_eq!(cur.node, 0, "virtual tour closes");
            assert_eq!(first, res.first_visit);
        }
    }

    #[test]
    fn reconstruction_isomorphic_to_ground_truth_contraction() {
        use rvz_trees::canon::canon_ports;
        let mut rng = StdRng::seed_from_u64(123);
        for n in [2usize, 3, 8, 30, 77] {
            let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
            let start = (0..t.num_nodes() as NodeId).find(|&v| t.degree(v) != 2).unwrap();
            let (res, _, _) = run_explo(&t, start);
            let ground = rvz_trees::contract(&t);
            let ground_root = ground.t_to_tp[start as usize].expect("start survives");
            assert_eq!(res.tprime.num_nodes(), ground.tree.num_nodes(), "n={n}");
            // Port-labeled rooted isomorphism between reconstruction (root 0)
            // and the true contraction rooted at the same physical node.
            assert_eq!(
                canon_ports(&res.tprime, 0, None, None),
                canon_ports(&ground.tree, ground_root, None, None),
                "n={n}"
            );
        }
    }

    #[test]
    fn symmetric_colored_line_is_detected() {
        let t = colored_line_center_zero(9);
        let (res, _, _) = run_explo(&t, 0);
        match res.shape {
            TprimeShape::CentralEdgeSym { far, steps_far, near, .. } => {
                // From leaf 0, T' = {0,9}: near is the root itself.
                assert_eq!(res.first_visit[near as usize], 0);
                assert_eq!(steps_far, res.first_visit[far as usize]);
                assert_eq!(steps_far, 1);
            }
            other => panic!("expected symmetric central edge, got {other:?}"),
        }
    }

    #[test]
    fn asymmetric_tprime_gets_canonical_extremity() {
        // A caterpillar whose two halves differ: T' has an asymmetric
        // central edge; both agents must choose the same extremity
        // regardless of their start.
        let t = caterpillar(4, &[2, 0, 0, 1]);
        let mut landmark_canon: Option<(u64, u64)> = None;
        for start in 0..t.num_nodes() as NodeId {
            let (res, _, _) = run_explo(&t, start);
            if let TprimeShape::CentralEdgeAsym { node, steps, .. } = &res.shape {
                // Identify the landmark physically by walking `steps`
                // T'-visits from the end node of the exploration.
                let _ = node;
                landmark_canon.get_or_insert((res.nu, res.leaves));
                assert_eq!(landmark_canon.unwrap(), (res.nu, res.leaves));
                assert!(*steps <= 2 * (res.nu - 1));
            }
        }
    }

    #[test]
    fn charged_vs_measured_bits() {
        let t = spider(8, 16);
        let (res, _, _) = run_explo(&t, 0);
        assert!(res.charged_bits() < res.measured_bits());
        assert_eq!(res.charged_bits(), 4 * rvz_agent::bits_for(res.nu));
    }

    #[test]
    fn full_mode_reconstructs_whole_tree() {
        use rvz_trees::canon::canon_ports;
        let mut rng = StdRng::seed_from_u64(4242);
        for n in [2usize, 3, 10, 41] {
            let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
            for start in [0u32, (n as u32) / 2, (n as u32) - 1] {
                let mut e = ExploBis::full();
                let mut cur = Cursor::new(start);
                let mut rounds = 0u64;
                loop {
                    match e.step(cur.obs(&t)) {
                        Step::Done => break,
                        Step::Move(p) => {
                            cur.apply(&t, Action::Move(p));
                            rounds += 1;
                        }
                        Step::Stay => unreachable!(),
                    }
                }
                let res = e.into_result().unwrap();
                assert_eq!(res.nu, n as u64, "full mode reconstructs all of T");
                assert_eq!(cur.node, start, "no leaf-seek in full mode");
                assert_eq!(rounds, 2 * (n as u64 - 1));
                assert_eq!(res.leaf_seek_len, 0);
                // Port-labeled rooted isomorphism with the real tree.
                assert_eq!(
                    canon_ports(&res.tprime, 0, None, None),
                    canon_ports(&t, start, None, None),
                    "n={n} start={start}"
                );
            }
        }
    }

    #[test]
    fn two_node_tree_explo() {
        let t = line(2);
        let (res, end, rounds) = run_explo(&t, 0);
        assert_eq!(res.nu, 2);
        assert_eq!(end, 0);
        assert_eq!(rounds, 2);
        assert!(matches!(res.shape, TprimeShape::CentralEdgeSym { .. }));
    }

    /// ExploBis exposed as a standalone Agent for simulator-level checks.
    struct ExploAgent {
        inner: ExploBis,
        done: bool,
    }

    impl Agent for ExploAgent {
        fn act(&mut self, obs: Obs) -> Action {
            if self.done {
                return Action::Stay;
            }
            match self.inner.step(obs) {
                Step::Done => {
                    self.done = true;
                    Action::Stay
                }
                Step::Move(p) => Action::Move(p),
                Step::Stay => Action::Stay,
            }
        }
        fn memory_bits(&self) -> u64 {
            self.inner.result().map_or(0, |r| r.measured_bits())
        }
    }

    #[test]
    fn explo_duration_is_independent_of_tprime_start() {
        // Any degree-≠2 start yields exactly 2(n−1) rounds (Claim 4.1 /
        // Synchro timing relies on this).
        let t = caterpillar(5, &[1, 2, 0, 1, 1]);
        let n = t.num_nodes() as u64;
        for start in 0..t.num_nodes() as NodeId {
            if t.degree(start) == 2 {
                continue;
            }
            let (_, end, rounds) = run_explo(&t, start);
            assert_eq!(rounds, 2 * (n - 1), "start={start}");
            assert_eq!(end, start);
        }
        // Degree-2 starts add exactly the leaf-seek length L.
        for start in 0..t.num_nodes() as NodeId {
            if t.degree(start) != 2 {
                continue;
            }
            let (res, _, rounds) = run_explo(&t, start);
            assert_eq!(rounds, res.leaf_seek_len + 2 * (n - 1), "start={start}");
        }
        let _ = ExploAgent { inner: ExploBis::new(), done: false };
    }
}
