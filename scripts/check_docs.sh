#!/usr/bin/env bash
# Doc health checks, fully offline — CI's docs leg and `just docs-check`.
#
#  1. Intra-repo markdown link check: every relative link (and same-file
#     or cross-file #anchor) in README.md and docs/*.md must resolve.
#  2. CLI drift check: the flag table in README.md and the `experiments
#     --help` output must document the same set of `--flags` — a flag
#     added to one without the other fails the build.
#
# Usage: scripts/check_docs.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== markdown link check (README.md docs/*.md) =="
python3 - <<'PY'
import glob, os, re, sys

files = ["README.md"] + sorted(glob.glob("docs/*.md"))
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def slugs(path):
    """GitHub-style anchor slugs of every heading in a markdown file."""
    out = set()
    for line in open(path, encoding="utf-8"):
        m = re.match(r"#+\s+(.*)", line)
        if m:
            text = re.sub(r"[`*]", "", m.group(1)).strip().lower()
            text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
            out.add(text.replace(" ", "-"))
    return out

slug_cache = {}
bad = []
for f in files:
    for target in link_re.findall(open(f, encoding="utf-8").read()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # offline: external links are not checked
        path, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(os.path.dirname(f), path)) if path else f
        if not os.path.exists(resolved):
            bad.append(f"{f}: broken link -> {target}")
            continue
        if anchor and resolved.endswith(".md"):
            if resolved not in slug_cache:
                slug_cache[resolved] = slugs(resolved)
            if anchor.lower() not in slug_cache[resolved]:
                bad.append(f"{f}: broken anchor -> {target}")

for b in bad:
    print(f"error: {b}")
print(f"checked {len(files)} files")
sys.exit(1 if bad else 0)
PY

echo "== CLI drift check (README flag table vs experiments --help) =="
help_out=$(cargo run --quiet --release --bin experiments -- --help)

# Flags the README's sweep-mode table documents (| `--flag ...` | rows).
readme_flags=$(grep -oE '^\| `--[a-z]+' README.md | grep -oE '\-\-[a-z]+' | sort -u)
# Flags --help advertises (both modes).
help_flags=$(grep -oE '\-\-[a-z]+' <<<"$help_out" | sort -u)

status=0
while read -r flag; do
    if ! grep -qF -- "$flag" <<<"$help_flags"; then
        echo "error: README documents $flag but 'experiments --help' does not mention it"
        status=1
    fi
done <<<"$readme_flags"
while read -r flag; do
    if ! grep -qF -- "$flag" README.md; then
        echo "error: 'experiments --help' advertises $flag but README.md does not mention it"
        status=1
    fi
done <<<"$help_flags"

echo "README flags: $(tr '\n' ' ' <<<"$readme_flags")"
echo "help flags:   $(tr '\n' ' ' <<<"$help_flags")"
[ "$status" -eq 0 ] && echo "docs checks passed"
exit "$status"
