#!/usr/bin/env bash
# Kill–resume differential on a journaled e9 — CI's crash-resume leg and
# `just crash-test`.
#
#  1. Uninterrupted reference run (no journal, no store).
#  2. Fault-injected run (`rvz-faults` build, RVZ_FAULTS hard abort at the
#     40th journal append) — must die without publishing JSON.
#  3. kill -9 mid-sweep while resuming leg 2's journal.
#  4. Torn-append leg (short write + abort; tolerated if too few cells
#     remain for the fault to fire).
#  5. Resume to completion at --threads 1 and 8: rows *and* certificates
#     must be byte-identical to the reference.
#  6. Store legs: a warmed --store round-trips; a truncated store and a
#     bit-flipped cache load both degrade (drop + recompute), never lie.
#  7. Worker legs (`--workers`, see docs/distributed.md): kill -9 a worker
#     mid-shard and kill -9 the supervisor (then resume) — both must end
#     byte-identical to the reference; a beat-less (wedged-heartbeat)
#     run stays identical; and when *every* worker dies on its first cell
#     (worker-kill / lease-steal faults + a low attempt cap) the run must
#     terminate with explicit poisoned rows, never fabricated data.
#
# Usage: scripts/crash_test.sh [OUTDIR]   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-crash-test}
mkdir -p "$out"

echo "== build (release, rvz-faults) =="
cargo build --release --features rvz-faults
exp=target/release/experiments

echo "== uninterrupted reference =="
"$exp" --experiment e9 --executor decide --threads 2 \
  --json "$out/ref.json" --certificates "$out/ref-certs.json"

ckpt="$out/e9.ckpt"
rm -f "$ckpt"

echo "== leg 1: hard abort at the 40th journal append =="
if RVZ_FAULTS=journal-append=abort@40 "$exp" --experiment e9 --executor decide \
    --threads 2 --checkpoint "$ckpt" --json "$out/aborted.json"; then
  echo "error: fault-injected run should have aborted" >&2
  exit 1
fi
if [ -e "$out/aborted.json" ]; then
  echo "error: aborted run must not publish JSON (atomic writes)" >&2
  exit 1
fi

echo "== leg 2: kill -9 mid-sweep (resuming leg 1's journal) =="
"$exp" --experiment e9 --executor decide --threads 2 \
  --checkpoint "$ckpt" --resume --json "$out/killed.json" &
pid=$!
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

echo "== leg 3: torn journal append (short write + abort) =="
# May complete cleanly if fewer than 10 cells remained after leg 2.
RVZ_FAULTS=journal-append=short-write@10 "$exp" --experiment e9 --executor decide \
  --threads 2 --checkpoint "$ckpt" --resume --json "$out/torn.json" || true

echo "== resume to completion; byte-compare against the reference =="
for t in 1 8; do
  "$exp" --experiment e9 --executor decide --threads "$t" \
    --checkpoint "$ckpt" --resume \
    --json "$out/resumed-t$t.json" --certificates "$out/resumed-certs-t$t.json"
  cmp "$out/ref.json" "$out/resumed-t$t.json"
  cmp "$out/ref-certs.json" "$out/resumed-certs-t$t.json"
done

echo "== store legs: persistence round-trip, truncation, bit-flipped load =="
store="$out/store"
rm -rf "$store"
"$exp" --experiment e9 --executor decide --threads 2 \
  --store "$store" --json "$out/warm.json"
cmp "$out/ref.json" "$out/warm.json"
for f in "$store"/*.store; do
  truncate -s -13 "$f"
done
"$exp" --experiment e9 --executor decide --threads 2 \
  --store "$store" --json "$out/truncated-store.json"
cmp "$out/ref.json" "$out/truncated-store.json"
RVZ_FAULTS=cache-load=bit-flip@1 "$exp" --experiment e9 --executor decide --threads 2 \
  --store "$store" --json "$out/flipped-store.json"
cmp "$out/ref.json" "$out/flipped-store.json"

echo "== worker leg 1: kill -9 a worker subprocess mid-shard =="
RVZ_HEARTBEAT_INTERVAL_MS=50 RVZ_HEARTBEAT_TIMEOUT_MS=1500 RVZ_WORKER_BACKOFF_MS=100 \
  "$exp" --experiment e9 --executor decide --threads 2 --workers 2 \
  --json "$out/workers-killed.json" --certificates "$out/workers-killed-certs.json" &
pid=$!
sleep 0.4
pkill -9 -f -- '--worker /' 2>/dev/null || true
wait "$pid"
cmp "$out/ref.json" "$out/workers-killed.json"
cmp "$out/ref-certs.json" "$out/workers-killed-certs.json"

echo "== worker leg 2: kill -9 the supervisor, then --resume the shard leases =="
wckpt="$out/workers.ckpt"
rm -f "$wckpt"
rm -rf "$out/workers.ckpt.work"
RVZ_HEARTBEAT_INTERVAL_MS=50 "$exp" --experiment e9 --executor decide --threads 2 --workers 2 \
  --checkpoint "$wckpt" --json "$out/workers-resumed.json" &
pid=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pkill -9 -f -- '--worker /' 2>/dev/null || true   # reap orphaned workers
RVZ_HEARTBEAT_INTERVAL_MS=50 "$exp" --experiment e9 --executor decide --threads 2 --workers 2 \
  --checkpoint "$wckpt" --resume \
  --json "$out/workers-resumed.json" --certificates "$out/workers-resumed-certs.json"
cmp "$out/ref.json" "$out/workers-resumed.json"
cmp "$out/ref-certs.json" "$out/workers-resumed-certs.json"

echo "== worker leg 3: beat-less workers (heartbeat-drop) stay byte-identical =="
RVZ_FAULTS=heartbeat-drop=abort@1 RVZ_HEARTBEAT_TIMEOUT_MS=10000 \
  "$exp" --experiment e9 --executor decide --threads 2 --workers 2 \
  --json "$out/workers-nobeat.json" --certificates "$out/workers-nobeat-certs.json"
cmp "$out/ref.json" "$out/workers-nobeat.json"
cmp "$out/ref-certs.json" "$out/workers-nobeat-certs.json"

echo "== worker leg 4: every worker dies — attempt cap quarantines poisoned rows =="
for fault in worker-kill lease-steal; do
  if ! RVZ_FAULTS="$fault=abort@1" RVZ_SHARD_ATTEMPTS=2 RVZ_WORKER_BACKOFF_MS=50 \
      RVZ_HEARTBEAT_INTERVAL_MS=50 RVZ_HEARTBEAT_TIMEOUT_MS=1000 \
      timeout 300 "$exp" --experiment e9 --executor decide --threads 2 --workers 2 \
      --json "$out/workers-$fault.json"; then
    echo "error: $fault run must terminate by quarantining, not hang or crash" >&2
    exit 1
  fi
  grep -q '"schema": "rvz-sweep/v5"' "$out/workers-$fault.json"
  grep -q '"poisoned": true' "$out/workers-$fault.json"
  if grep -q '"met": true' "$out/workers-$fault.json"; then
    echo "error: $fault run must not fabricate measurements" >&2
    exit 1
  fi
done

echo "crash-test passed: resumed, store-restored and worker-merged outputs are byte-identical"
