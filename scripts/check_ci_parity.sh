#!/usr/bin/env bash
# CI <-> justfile parity gate — CI's lint leg and `just ci-parity-check`.
#
# The justfile's header promises that local targets mirror
# .github/workflows/ci.yml. This script makes that promise a build gate:
#
#  1. Every CI job maps (via the explicit table below) to the just
#     targets that reproduce it locally, and the table names no CI job
#     that does not exist — adding or renaming a job without updating
#     the mapping fails the build.
#  2. Every mapped just target exists in the justfile.
#  3. Every mapped just target is reachable from the `ci:` aggregate, so
#     `just ci` really is the full CI-equivalent pass.
#  4. Every helper script ci.yml invokes exists, is executable, and is
#     also reachable from a just target (no CI-only shell logic).
#
# Usage: scripts/check_ci_parity.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

workflow=.github/workflows/ci.yml
status=0

# ---- the one source of truth: CI job -> just targets -------------------
declare -A JOB_TARGETS=(
    [build-test]="build test"
    [lint]="fmt-check clippy docs doctest docs-check ci-parity-check"
    [differential]="differential"
    [planner-differential]="planner-differential"
    [crash-resume]="crash-test worker-crash-test"
    [bench-smoke]="bench-json-check bench-smoke"
)

# CI job ids: two-space-indented `name:` keys inside the workflow's
# `jobs:` block (steps and `with:` maps sit deeper).
ci_jobs=$(awk '/^jobs:/{injobs=1; next} injobs && /^  [a-z0-9-]+:/{sub(/^  /,""); sub(/:.*/,""); print}' "$workflow")

# Just targets: unindented `name:` definition lines (skip comments and
# the aggregate's dependency list is still a definition line).
just_targets=$(grep -oE '^[a-z0-9-]+:' justfile | tr -d ':')
ci_aggregate=$(grep -E '^ci:' justfile)

echo "== CI jobs -> just targets =="
while read -r job; do
    if [[ ! -v JOB_TARGETS[$job] ]]; then
        echo "error: CI job '$job' has no just-target mapping in scripts/check_ci_parity.sh"
        status=1
        continue
    fi
    echo "  $job -> ${JOB_TARGETS[$job]}"
done <<<"$ci_jobs"

echo "== mapped jobs exist in CI =="
for job in "${!JOB_TARGETS[@]}"; do
    if ! grep -qxF -- "$job" <<<"$ci_jobs"; then
        echo "error: mapping names CI job '$job' but $workflow does not define it"
        status=1
    fi
done

echo "== mapped targets exist and sit in 'just ci' =="
for targets in "${JOB_TARGETS[@]}"; do
    for t in $targets; do
        if ! grep -qxF -- "$t" <<<"$just_targets"; then
            echo "error: mapping names just target '$t' but the justfile does not define it"
            status=1
            continue
        fi
        # worker-crash-test is reached through crash-test; everything
        # else must be a direct dependency of the `ci:` aggregate.
        if [[ "$t" == worker-crash-test ]]; then
            grep -qE '(^|\s)just worker-crash-test(\s|$)' justfile || {
                echo "error: crash-test no longer chains to worker-crash-test"
                status=1
            }
        elif ! grep -qE "(^|\s)$t(\s|$)" <<<"$ci_aggregate"; then
            echo "error: just target '$t' is not in the 'ci:' aggregate"
            status=1
        fi
    done
done

echo "== helper scripts used by CI are shared with just =="
ci_scripts=$(grep -oE 'scripts/[a-z_]+\.sh' "$workflow" | sort -u)
while read -r s; do
    [[ -f "$s" ]] || { echo "error: CI invokes $s but it does not exist"; status=1; continue; }
    [[ -x "$s" ]] || { echo "error: $s is not executable"; status=1; }
    grep -qF -- "$s" justfile || {
        echo "error: CI invokes $s but no just target references it"
        status=1
    }
done <<<"$ci_scripts"

[ "$status" -eq 0 ] && echo "ci parity checks passed"
exit "$status"
