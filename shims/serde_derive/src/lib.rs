//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline): supports
//! `#[derive(Serialize)]` on non-generic structs with named fields, which
//! is the entire surface the workspace uses. Anything else is a compile
//! error with a pointed message rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility, find `struct Name`.
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde shim: derive(Serialize) supports structs only")
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("serde shim: expected struct name"),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("serde shim: no `struct` item found");

    // The body must be a brace group of named fields; generics unsupported.
    let mut fields: Option<Vec<String>> = None;
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim: generic structs not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream()));
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim: tuple structs not supported")
            }
            _ => {}
        }
    }
    let fields = fields.expect("serde shim: expected named-field struct body");

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_json_value(&self.{f})),"
            )
        })
        .collect();
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse().expect("serde shim: generated impl failed to parse")
}

/// Extracts field names from the token stream of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments arrive as `#[doc = "..."]`).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Optional `pub` / `pub(...)`.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => out.push(id.to_string()),
            Some(other) => panic!("serde shim: unexpected token in struct body: {other}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde shim: expected `:` after field name"),
        }
        // Skip the type up to the next top-level comma. `->` (fn-pointer
        // types) must not be miscounted as closing an angle bracket.
        let mut angle_depth = 0i32;
        let mut prev_char = ' ';
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    match c {
                        '<' => angle_depth += 1,
                        '>' if prev_char != '-' => {
                            angle_depth -= 1;
                            assert!(angle_depth >= 0, "serde shim: unbalanced `>` in a field type");
                        }
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                    prev_char = c;
                }
                Some(_) => prev_char = ' ',
            }
        }
    }
    out
}
