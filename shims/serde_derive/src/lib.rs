//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline): supports
//! `#[derive(Serialize)]` on non-generic structs with named fields, plus
//! the field attribute `#[serde(skip_serializing_if = "path")]` (the one
//! knob the workspace uses to add optional fields without disturbing the
//! serialized shape of existing rows). Anything else is a compile error
//! with a pointed message rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility, find `struct Name`.
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde shim: derive(Serialize) supports structs only")
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("serde shim: expected struct name"),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("serde shim: no `struct` item found");

    // The body must be a brace group of named fields; generics unsupported.
    let mut fields: Option<Vec<(String, Option<String>)>> = None;
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim: generic structs not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream()));
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim: tuple structs not supported")
            }
            _ => {}
        }
    }
    let fields = fields.expect("serde shim: expected named-field struct body");

    let entries: String = fields
        .iter()
        .map(|(f, skip_if)| {
            let push = format!(
                "fields.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_json_value(&self.{f})));"
            );
            match skip_if {
                None => push,
                Some(pred) => format!("if !{pred}(&self.{f}) {{ {push} }}"),
            }
        })
        .collect();
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {entries}\n\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}"
    );
    out.parse().expect("serde shim: generated impl failed to parse")
}

/// Reads a `#[serde(skip_serializing_if = "path")]` attribute body (the
/// token stream inside the brackets); `None` for every other attribute.
fn parse_serde_skip(attr: TokenStream) -> Option<String> {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = iter.next() else {
        return None;
    };
    let mut inner = g.stream().into_iter();
    loop {
        match inner.next() {
            None => return None,
            Some(TokenTree::Ident(id)) if id.to_string() == "skip_serializing_if" => break,
            Some(_) => {}
        }
    }
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
            let s = lit.to_string();
            let path = s.trim_matches('"').to_string();
            assert!(
                !path.is_empty() && s.starts_with('"') && s.ends_with('"'),
                "serde shim: skip_serializing_if expects a quoted path"
            );
            Some(path)
        }
        _ => panic!("serde shim: malformed skip_serializing_if attribute"),
    }
}

/// Extracts `(field name, skip_serializing_if predicate)` pairs from the
/// token stream of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field attributes (doc comments arrive as `#[doc = "..."]`):
        // remember a `skip_serializing_if` predicate, skip everything else.
        let mut skip_if: Option<String> = None;
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                if let Some(pred) = parse_serde_skip(g.stream()) {
                    skip_if = Some(pred);
                }
            }
        }
        // Optional `pub` / `pub(...)`.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => out.push((id.to_string(), skip_if)),
            Some(other) => panic!("serde shim: unexpected token in struct body: {other}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde shim: expected `:` after field name"),
        }
        // Skip the type up to the next top-level comma. `->` (fn-pointer
        // types) must not be miscounted as closing an angle bracket.
        let mut angle_depth = 0i32;
        let mut prev_char = ' ';
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    match c {
                        '<' => angle_depth += 1,
                        '>' if prev_char != '-' => {
                            angle_depth -= 1;
                            assert!(angle_depth >= 0, "serde shim: unbalanced `>` in a field type");
                        }
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                    prev_char = c;
                }
                Some(_) => prev_char = ' ',
            }
        }
    }
    out
}
