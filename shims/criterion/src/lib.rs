//! Offline API-subset shim for `criterion` (see `shims/README.md`).
//!
//! Compiles the workspace's criterion benches unmodified and reports a
//! single mean wall-clock figure per benchmark — enough for smoke runs and
//! coarse comparisons, with none of criterion's statistics.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations.
const MAX_ITERS: u64 = 10_000;

/// `--test` mode (as in real criterion): run each benchmark exactly once to
/// prove it executes, skipping the timing loop. CI's bench-smoke uses this.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Benchmark registry / driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let filter = self.filter.clone();
        run_one(id, None, &filter, |b| f(b));
        self
    }

    fn configure_from_args(mut self) -> Self {
        // `cargo bench` forwards harness flags (`--bench`, `--profile-time`,
        // ...); the first free-standing argument is a name filter.
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => TEST_MODE.store(true, Ordering::Relaxed),
                "--bench" | "--list" | "--exact" | "--nocapture" | "--quiet" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                a if a.starts_with('-') => {}
                free => self.filter = Some(free.to_string()),
            }
        }
        self
    }
}

/// Identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Throughput annotation; reported per element/byte when present.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    filter: Option<String>,
    // Tie the group to its Criterion like the real API does.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_name());
        run_one(&id, self.throughput, &self.filter, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_name());
        run_one(&id, self.throughput, &self.filter, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts `&str`, `String`, or `BenchmarkId` as a benchmark name.
pub trait IntoBenchmarkName {
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, also used to calibrate the iteration count.
        let t0 = Instant::now();
        black_box(routine());
        if TEST_MODE.load(Ordering::Relaxed) {
            // `--test`: the warm-up call proved the benchmark runs.
            self.elapsed = t0.elapsed();
            self.iters_done = 1;
            return;
        }
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = t1.elapsed();
        self.iters_done = iters;
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    filter: &Option<String>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter =
        if b.iters_done > 0 { b.elapsed.as_nanos() as f64 / b.iters_done as f64 } else { f64::NAN };
    let extra = match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            format!("  ({:.1} ns/elem)", per_iter / n as f64)
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            format!("  ({:.3} ns/byte)", per_iter / n as f64)
        }
        _ => String::new(),
    };
    println!("bench: {id:<50} {:>14.1} ns/iter{extra}  [{} iters]", per_iter, b.iters_done);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().__configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

impl Criterion {
    /// Internal hook for `criterion_group!`; not part of the real API.
    #[doc(hidden)]
    pub fn __configure_from_args(self) -> Self {
        self.configure_from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        let id = BenchmarkId::new("walk", 128);
        assert_eq!(id.into_benchmark_name(), "walk/128");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(3 + 4));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
