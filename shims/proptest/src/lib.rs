//! Offline API-subset shim for `proptest` (see `shims/README.md`).
//!
//! Deterministic property testing: each `proptest!` test runs
//! `ProptestConfig::cases` cases from a generator seeded by the test's
//! name, `prop_assume!` rejections are retried (with a bounded attempt
//! budget), and failures panic with the offending case — there is no
//! shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Rejection token produced by `prop_assume!`.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Attempt budget multiplier for `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// The shim's case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator, as in `proptest::strategy::Strategy` (minus
/// shrinking: `generate` replaces the value-tree machinery).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod strategy {
    pub use crate::{Map, Strategy};
}

pub mod test_runner {
    pub use crate::{ProptestConfig, Rejected, TestRng};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is not counted; another is drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ( $( $strat, )+ );
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let budget = config.cases.saturating_add(config.max_global_rejects);
                while accepted < config.cases && attempts < budget {
                    attempts += 1;
                    let ( $( $arg, )+ ) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted == config.cases,
                    "proptest shim: too many prop_assume! rejections — only {accepted} of {} \
                     cases accepted within {attempts} attempts (raise max_global_rejects or \
                     loosen the assumption)",
                    config.cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled(max: usize) -> impl Strategy<Value = usize> {
        (1..=max).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u32..=4, z in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            let _ = z;
        }

        #[test]
        fn assume_filters(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a < b);
            prop_assert!(a < b);
        }

        #[test]
        fn prop_map_applies(v in doubled(21)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((2..=42).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u64..5) {
            prop_assert_ne!(x, 99);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
