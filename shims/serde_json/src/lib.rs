//! Offline API-subset shim for `serde_json` (see `shims/README.md`).
//!
//! Renders and parses the [`serde::Value`] model: `to_value`, `to_string`,
//! `to_string_pretty`, `from_str`, and a `json!` macro for flat object /
//! array literals (nested literals must themselves be wrapped in `json!`).

use serde::Serialize;
pub use serde::Value;
use std::fmt;

/// Parse / serialize error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when applicable.
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON text (serde_json's pretty style).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(v)
}

/// Builds a [`Value`] from a flat literal.
///
/// Supported: `json!(null)`, scalars, `json!([a, b, ...])`, and
/// `json!({"key": expr, ...})` where each `expr` implements
/// `serde::Serialize` (use a nested `json!` call for nested literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest round-trippable form, always
                // with a decimal point or exponent (e.g. `1.0`).
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!("unexpected byte `{}`", b as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape", start))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape", start))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape", start))?;
                            // Surrogate pairs unsupported (not produced by
                            // our writer); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({
            "name": "line",
            "n": 8usize,
            "ratio": 0.5f64,
            "met": true,
            "none": Option::<u64>::None,
            "rows": vec![1u64, 2, 3]
        });
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&s).unwrap(), v, "text was: {s}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{0001}f".into());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn pretty_style_matches_serde_json() {
        let v = json!({ "a": 1u64 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
