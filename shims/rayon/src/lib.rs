//! Offline API-subset shim for `rayon` (see `shims/README.md`).
//!
//! Fans work across `std::thread::scope` workers pulling indices from a
//! shared atomic counter. Results are reassembled in input order, so
//! `par_iter().map(f).collect::<Vec<_>>()` is ordered exactly like the
//! sequential map regardless of scheduling — the property the sweep
//! engine's determinism guarantee rests on.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel iterator will use here and now.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Build error (the shim cannot actually fail to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use all available cores", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A sized pool; parallel iterators inside [`ThreadPool::install`] use its
/// thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = op();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Ordered parallel map over a slice: the engine under every iterator here.
fn par_map_slice<'a, T: Sync, R: Send>(items: &'a [T], f: impl Fn(&'a T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("rayon shim: worker panicked")).collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// `par_iter()` entry point for `&Vec<T>` / `&[T]`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap { items: self.items, f }
    }

    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let _: Vec<()> = par_map_slice(self.items, &f);
    }
}

/// Mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let f = &self.f;
        C::from_ordered(par_map_slice(self.items, f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelIterator<R> {
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let xs: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x * x).collect();
        let par: Vec<u64> = xs.par_iter().map(|x| x * x).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Restored afterwards.
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn single_thread_pool_is_sequential_path() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> =
            pool.install(|| (0..16).collect::<Vec<usize>>().par_iter().map(|&i| i + 1).collect());
        assert_eq!(out, (1..17).collect::<Vec<usize>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        let xs: Vec<usize> = (1..=100).collect();
        xs.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 5050);
    }
}
