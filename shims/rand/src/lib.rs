//! Offline API-subset shim for `rand` 0.8 (see `shims/README.md`).
//!
//! Deterministic, seedable, and statistically adequate for experiment
//! sweeps; the generated streams are NOT those of crates.io `rand`.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling extension methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a `Range` / `RangeInclusive` over integers.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 uniform mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the canonical stream-expansion function.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-progression generator for deterministic unit tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            incr: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, incr: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.incr);
                out
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    fn below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn step_rng_steps() {
        use super::RngCore;
        let mut r = StepRng::new(7, 13);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 20);
    }
}
