//! Offline API-subset shim for `serde` (see `shims/README.md`).
//!
//! Instead of serde's visitor architecture, [`Serialize`] converts a value
//! into an owned JSON [`Value`] tree; `serde_json` renders and parses it.
//! `#[derive(Serialize)]` (from the sibling `serde_derive` shim) works on
//! non-generic structs with named fields.

// Let derive-generated `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value tree.
///
/// Numbers keep their source flavor (`Int`/`UInt`/`Float`) but compare
/// numerically across flavors, so `to_value(x) == from_str(to_string(x))`
/// holds even though e.g. a `u64` field reparses as `Int`.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            // Numbers compare across flavors.
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Float(a), Float(b)) => a == b,
            (Float(f), Int(i)) | (Int(i), Float(f)) => *f == *i as f64,
            (Float(f), UInt(u)) | (UInt(u), Float(f)) => *f == *u as f64,
            _ => false,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into the JSON value model.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Shared ownership serializes transparently (`Arc<str>` interned labels,
/// `Arc<T>` shared rows) — same JSON as the inner value, like serde's `rc`
/// feature.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_compare_across_flavors() {
        assert_eq!(Value::Int(3), Value::UInt(3));
        assert_eq!(Value::Float(3.0), Value::Int(3));
        assert_ne!(Value::Int(-1), Value::UInt(u64::MAX));
        assert_ne!(Value::Float(3.5), Value::Int(3));
    }

    #[test]
    fn indexing_and_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Str("x".into())])),
            ("b".into(), Value::Bool(true)),
        ]);
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_str(), Some("x"));
        assert_eq!(v["b"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn skip_serializing_if_omits_the_field_entirely() {
        #[derive(Serialize)]
        struct Row {
            a: u64,
            #[serde(skip_serializing_if = "Option::is_none")]
            b: Option<String>,
            c: bool,
        }
        let none = Row { a: 1, b: None, c: true }.to_json_value();
        let Value::Object(fields) = &none else { panic!("object expected") };
        assert_eq!(fields.len(), 2, "a skipped field must not appear, even as null");
        assert!(none.get("b").is_none());
        let some = Row { a: 1, b: Some("x".into()), c: true }.to_json_value();
        let Value::Object(fields) = &some else { panic!("object expected") };
        // Present values serialize in declaration order, between a and c.
        assert_eq!(fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(some["b"].as_str(), Some("x"));
    }

    #[test]
    fn derive_serializes_named_structs() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            n: usize,
            ratio: f64,
            met: bool,
            tags: Vec<String>,
        }
        let r = Row { name: "line".into(), n: 8, ratio: 0.5, met: true, tags: vec!["a".into()] };
        let v = r.to_json_value();
        assert_eq!(v["name"].as_str(), Some("line"));
        assert_eq!(v["n"].as_u64(), Some(8));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(v["met"].as_bool(), Some(true));
        assert_eq!(v["tags"][0].as_str(), Some("a"));
    }
}
