//! Property tests for checkpoint-journal recovery (PR-7's crash model):
//! a journal truncated at *any* byte offset, or hit by *any* single-bit
//! flip, parses to a clean prefix of the original records — never a
//! panic, never a wrong or mutated row. CRC-32 detects every single-bit
//! error, so a flipped record can only be dropped, not misread.

use proptest::prelude::*;
use rvz_bench::checkpoint::{encode_journal, parse_journal, CellRecord};
use rvz_bench::sweep::{self, Delay, Executor, Family, SweepInstance, SweepSpec, Variant};
use std::collections::HashMap;
use std::sync::OnceLock;

const FINGERPRINT: u64 = 0xFEED_FACE_CAFE_F00D;

/// Canonical form of a journaled outcome: the serde byte-stream of the
/// row and certificate (the same bytes the journal stores), so "never a
/// wrong row" is byte-level, not structural.
fn canonical(rec: &CellRecord) -> (Option<String>, Option<String>) {
    (
        rec.row.as_ref().map(|r| serde_json::to_string(r).expect("row")),
        rec.certificate.as_ref().map(|c| serde_json::to_string(c).expect("cert")),
    )
}

/// Genuine sweep outcomes (rows *and* ∀-delay certificates) journaled
/// once; every property mutates the same encoded byte-stream.
fn fixture() -> &'static (Vec<u8>, HashMap<u64, (Option<String>, Option<String>)>) {
    static FIXTURE: OnceLock<(Vec<u8>, HashMap<u64, (Option<String>, Option<String>)>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let spec = SweepSpec {
            experiment: "journal-recovery".into(),
            families: vec![Family::Line, Family::Spider3],
            sizes: vec![5, 6],
            delays: vec![Delay::Zero, Delay::Adversarial],
            variants: vec![Variant::BasicWalkFsa],
            pairs_per_cell: 2,
            seed: 0xA5A5,
            threads: 1,
            executor: Executor::ExactDecide,
            agents: 2,
        };
        let records: Vec<CellRecord> = sweep::cells(&spec)
            .iter()
            .map(|cell| {
                let inst = SweepInstance::for_cell(cell);
                let (row, certificate) = sweep::run_cell_with_executor(cell, &inst, spec.executor);
                CellRecord { cell_seed: cell.cell_seed(), row, certificate }
            })
            .collect();
        let canon = records.iter().map(|r| (r.cell_seed, canonical(r))).collect();
        (encode_journal(FINGERPRINT, &records), canon)
    })
}

/// Every recovered cell must be one of the originals, byte-identical.
fn assert_clean_subset(bytes: &[u8], canon: &HashMap<u64, (Option<String>, Option<String>)>) {
    let snap = parse_journal(bytes);
    if let Some(fp) = snap.fingerprint {
        assert_eq!(fp, FINGERPRINT, "a surviving header must carry the true fingerprint");
    }
    for (seed, rec) in &snap.cells {
        assert_eq!(*seed, rec.cell_seed);
        let original = canon
            .get(seed)
            .unwrap_or_else(|| panic!("recovered cell {seed:#x} was never journaled"));
        assert_eq!(&canonical(rec), original, "recovered cell {seed:#x} mutated");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_at_any_offset_recovers_a_clean_prefix(cut in any::<usize>()) {
        let (bytes, canon) = fixture();
        let cut = cut % (bytes.len() + 1);
        assert_clean_subset(&bytes[..cut], canon);
        // Full-length input is the intact journal: everything recovers.
        if cut == bytes.len() {
            let snap = parse_journal(bytes);
            prop_assert_eq!(snap.cells.len(), canon.len());
            prop_assert_eq!(snap.fingerprint, Some(FINGERPRINT));
            prop_assert_eq!(snap.bad_records, 0);
            prop_assert!(!snap.torn_tail);
        }
    }

    #[test]
    fn single_bit_flip_never_yields_a_wrong_row(
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (bytes, canon) = fixture();
        let mut mangled = bytes.clone();
        let pos = pos % mangled.len();
        mangled[pos] ^= 1 << bit;
        assert_clean_subset(&mangled, canon);
    }

    #[test]
    fn truncate_then_flip_never_yields_a_wrong_row(
        cut in any::<usize>(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (bytes, canon) = fixture();
        let mut mangled = bytes[..cut % (bytes.len() + 1)].to_vec();
        if !mangled.is_empty() {
            let pos = pos % mangled.len();
            mangled[pos] ^= 1 << bit;
        }
        assert_clean_subset(&mangled, canon);
    }
}
