//! The feasibility boundary, exhaustively — including the subtlety the
//! paper's *bibliographic note* (§1.2) is devoted to.
//!
//! For a tree with a given labeling µ and starts (u, v), three regimes:
//!
//! 1. **symmetric w.r.t. µ** — no pair of identical deterministic agents
//!    can ever meet (they mirror forever);
//! 2. **not perfectly symmetrizable** — the Theorem 4.1 agent MUST meet
//!    (this, and only this, is what the theorem promises);
//! 3. **perfectly symmetrizable but not symmetric w.r.t. this µ** — the
//!    in-between zone: meeting is permitted but not guaranteed
//!    ([15] shows guaranteeing it can cost Ω(log n) bits). We record what
//!    actually happens, without asserting either way.

use tree_rendezvous::core::TreeRendezvousAgent;
use tree_rendezvous::sim::{run_pair, PairConfig};
use tree_rendezvous::trees::generators::{all_labelings, caterpillar, line, spider};
use tree_rendezvous::trees::{perfectly_symmetrizable, symmetric_wrt_labeling, NodeId, Tree};

fn outcome(t: &Tree, a: NodeId, b: NodeId, budget: u64) -> bool {
    let mut x = TreeRendezvousAgent::new();
    let mut y = TreeRendezvousAgent::new();
    run_pair(t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget)).outcome.met()
}

#[test]
fn exhaustive_feasibility_boundary_on_small_trees() {
    let base_trees = vec![line(4), line(5), line(6), spider(3, 1), caterpillar(3, &[1, 0, 1])];
    let mut in_between_met = 0u32;
    let mut in_between_missed = 0u32;
    for base in &base_trees {
        let n = base.num_nodes() as NodeId;
        for labeled in all_labelings(base) {
            for a in 0..n {
                for b in (a + 1)..n {
                    let sym_mu = symmetric_wrt_labeling(&labeled, a, b);
                    let ps = perfectly_symmetrizable(&labeled, a, b);
                    let met = outcome(&labeled, a, b, 60_000); // worst observed meet ≈ 5.3k rounds
                    if sym_mu {
                        assert!(
                            !met,
                            "symmetric-wrt-µ pair ({a},{b}) met — impossible for identical agents"
                        );
                    } else if !ps {
                        assert!(
                            met,
                            "non-perfectly-symmetrizable pair ({a},{b}) missed — violates Thm 4.1"
                        );
                    } else {
                        // Regime 3: no guarantee either way (§1.2 note).
                        if met {
                            in_between_met += 1;
                        } else {
                            in_between_missed += 1;
                        }
                    }
                }
            }
        }
    }
    // The in-between regime must be non-empty on these families (otherwise
    // the test isn't exercising the bibliographic-note subtlety at all).
    assert!(
        in_between_met + in_between_missed > 0,
        "expected some perfectly-symmetrizable pairs under asymmetric labelings"
    );
}

#[test]
fn symmetric_wrt_mu_implies_perfectly_symmetrizable() {
    // Def 1.2 sanity at the API level, exhaustively on small lines.
    for base in [line(4), line(6)] {
        let n = base.num_nodes() as NodeId;
        for labeled in all_labelings(&base) {
            for a in 0..n {
                for b in 0..n {
                    if symmetric_wrt_labeling(&labeled, a, b) && a != b {
                        assert!(perfectly_symmetrizable(&labeled, a, b));
                    }
                }
            }
        }
    }
}
