//! End-to-end integration: the full Theorem 4.1 agent and the
//! arbitrary-delay baseline across tree families, labelings and delays.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tree_rendezvous::core::{DelayRobustAgent, TreeRendezvousAgent};
use tree_rendezvous::sim::{run_pair, PairConfig};
use tree_rendezvous::trees::generators::{
    binomial, caterpillar, complete_binary, line, random_bounded_degree_tree, random_relabel,
    random_tree, spider, star,
};
use tree_rendezvous::trees::{perfectly_symmetrizable, NodeId, Tree};

fn tree_zoo(seed: u64) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        line(9),
        line(12),
        random_relabel(&line(15), &mut rng),
        star(7),
        spider(3, 4),
        spider(5, 2),
        caterpillar(5, &[1, 0, 2, 0, 1]),
        complete_binary(3),
        binomial(4),
        random_relabel(&random_tree(14, &mut rng), &mut rng),
        random_relabel(&random_tree(21, &mut rng), &mut rng),
        random_bounded_degree_tree(18, 3, &mut rng),
    ]
}

fn feasible_pairs(t: &Tree, limit: usize) -> Vec<(NodeId, NodeId)> {
    let n = t.num_nodes() as NodeId;
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !perfectly_symmetrizable(t, a, b) {
                out.push((a, b));
                if out.len() == limit {
                    return out;
                }
            }
        }
    }
    out
}

#[test]
fn theorem_4_1_agent_meets_across_the_zoo() {
    for (i, t) in tree_zoo(1).into_iter().enumerate() {
        let budget = (t.num_nodes() as u64).pow(2) * 50_000 + 1_000_000;
        for (a, b) in feasible_pairs(&t, 4) {
            let mut x = TreeRendezvousAgent::new();
            let mut y = TreeRendezvousAgent::new();
            let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::simultaneous(budget));
            assert!(
                run.outcome.met(),
                "tree #{i} (n={}, ℓ={}), pair ({a},{b}) did not meet",
                t.num_nodes(),
                t.num_leaves()
            );
        }
    }
}

#[test]
fn baseline_meets_across_delays() {
    for (i, t) in tree_zoo(2).into_iter().enumerate() {
        let n = t.num_nodes() as u64;
        let budget = 8 * n * 16 * n.max(8) * 4 + 200_000;
        for (a, b) in feasible_pairs(&t, 2) {
            for delay in [0u64, 1, n, 10 * n + 3] {
                let mut x = DelayRobustAgent::new();
                let mut y = DelayRobustAgent::new();
                let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget));
                assert!(run.outcome.met(), "tree #{i} pair ({a},{b}) delay {delay} did not meet");
            }
        }
    }
}

#[test]
fn infeasible_instances_never_meet_for_either_algorithm() {
    // Mirror-labeled even lines: perfectly symmetrizable mirror pairs.
    let t = tree_rendezvous::trees::generators::colored_line_center_zero(7); // 8 nodes
    for (a, b) in [(0u32, 7u32), (2, 5)] {
        assert!(perfectly_symmetrizable(&t, a, b));
        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        let run = run_pair(&t, a, b, &mut x, &mut y, PairConfig::simultaneous(3_000_000));
        assert!(!run.outcome.met(), "Thm 4.1 agent cannot beat Fact 1.1");

        let mut p = DelayRobustAgent::new();
        let mut q = DelayRobustAgent::new();
        let run = run_pair(&t, a, b, &mut p, &mut q, PairConfig::simultaneous(3_000_000));
        assert!(!run.outcome.met(), "baseline cannot beat Fact 1.1");
    }
}

#[test]
fn memory_scales_as_the_paper_claims() {
    // Provisioned sizes: delay-0 ≈ c₁ log ℓ + c₂ log log n; any-delay ≈ c₃ log n.
    let at = |n: u64| {
        (TreeRendezvousAgent::provisioned_bits(n, 2), DelayRobustAgent::provisioned_bits(n))
    };
    let (d0_small, any_small) = at(1 << 5);
    let (d0_big, any_big) = at(1 << 10);
    // Arbitrary-delay memory grows by ≈ 6·5 = 30+ bits over 5 doublings…
    assert!(any_big >= any_small + 20, "{any_small} → {any_big}");
    // …while delay-0 memory moves by at most a few bits.
    assert!(d0_big <= d0_small + 6, "{d0_small} → {d0_big}");
}

#[test]
fn meeting_detection_is_symmetric_in_agent_order() {
    let t = line(10);
    let run1 = {
        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        run_pair(&t, 2, 7, &mut x, &mut y, PairConfig::simultaneous(10_000_000))
    };
    let run2 = {
        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        run_pair(&t, 7, 2, &mut x, &mut y, PairConfig::simultaneous(10_000_000))
    };
    assert_eq!(run1.outcome.met(), run2.outcome.met());
    assert_eq!(run1.outcome.round(), run2.outcome.round());
}
