//! Differential tests for the k-agent ensemble engine: the three answer
//! paths — k-lane stepping ([`run_ensemble_fsa`]), the trace-store merge
//! ([`replay_ensemble`]) and the exact decider ([`decide_ensemble`]) —
//! must agree with each other, and at `k = 2` must agree bit-for-bit
//! with the pair engines they generalize. Property-style: seeded random
//! trees (n ≤ 6) × feasible start tuples × the schedule classes the e11
//! sweep exercises (simultaneous, start delay, crash, intermittent).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tree_rendezvous::agent::model::Agent;
use tree_rendezvous::agent::Fsa;
use tree_rendezvous::lowerbounds::decide::{decide_ensemble, decide_pair, verify_ensemble_lasso};
use tree_rendezvous::sim::{
    replay_ensemble, run_ensemble_fsa, run_pair_fsa, run_pair_scheduled_fsa, EnsembleReplay,
    EnsembleRun, EnsembleSchedule, PairConfig, Schedule, TraceRecorder,
};
use tree_rendezvous::trees::generators::{random_relabel, random_tree};
use tree_rendezvous::trees::{perfectly_symmetrizable, NodeId, Tree};

/// Exact bw decision horizon for an ensemble schedule: past the prefix
/// the joint state is periodic within `cycle · 2(n−1)` rounds, so two
/// such periods decide gathering (the bound the sweep layer uses).
fn bw_budget(t: &Tree, sched: &EnsembleSchedule) -> u64 {
    let two_periods = 4 * (t.num_nodes() as u64 - 1) + 2;
    sched.prefix_len() + sched.cycle_len() * two_periods
}

/// Seeded random trees, relabeled so port orders are adversarial too.
fn trees(seed: u64, count: usize, n: usize) -> Vec<Tree> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_relabel(&random_tree(n, &mut rng), &mut rng)).collect()
}

/// All ordered feasible k-tuples (pairwise distinct, no pairwise
/// perfectly-symmetrizable entries), lexicographic.
fn feasible_tuples(t: &Tree, k: usize) -> Vec<Vec<NodeId>> {
    let n = t.num_nodes() as NodeId;
    let mut out = Vec::new();
    let mut tuple: Vec<NodeId> = Vec::new();
    fn extend(t: &Tree, n: NodeId, k: usize, tuple: &mut Vec<NodeId>, out: &mut Vec<Vec<NodeId>>) {
        if tuple.len() == k {
            out.push(tuple.clone());
            return;
        }
        'cand: for v in 0..n {
            for &u in tuple.iter() {
                if u == v || perfectly_symmetrizable(t, u, v) {
                    continue 'cand;
                }
            }
            tuple.push(v);
            extend(t, n, k, tuple, out);
            tuple.pop();
        }
    }
    extend(t, n, k, &mut tuple, &mut out);
    out
}

/// Steps a k-lane ensemble of basic walkers under `sched`.
fn step_ensemble(t: &Tree, fsa: &Fsa, starts: &[NodeId], sched: &EnsembleSchedule) -> EnsembleRun {
    let mut bank: Vec<_> = starts.iter().map(|_| fsa.runner_owned()).collect();
    run_ensemble_fsa(t, starts, &mut bank, sched, bw_budget(t, sched), false)
}

/// Replays the same ensemble from per-lane solo recordings, growing the
/// recordings on demand exactly as the sweep's replay executor does.
fn replay_from_recordings(
    t: &Tree,
    fsa: &Fsa,
    starts: &[NodeId],
    sched: &EnsembleSchedule,
) -> EnsembleRun {
    let mut recs: Vec<_> = starts
        .iter()
        .map(|&s| TraceRecorder::new(s, fsa.runner_owned(), Agent::memory_bits))
        .collect();
    loop {
        let trajs: Vec<_> = recs.iter().map(|r| r.trajectory().clone()).collect();
        let refs: Vec<&_> = trajs.iter().collect();
        match replay_ensemble(t, &refs, sched, bw_budget(t, sched), false) {
            EnsembleReplay::Decided(run) => return run,
            EnsembleReplay::NeedMore { rounds } => {
                for (rec, need) in recs.iter_mut().zip(&rounds) {
                    if *need > 0 {
                        rec.record_to(t, *need);
                    }
                }
            }
        }
    }
}

/// The e11 schedule classes at width `k` over an `n`-node instance.
fn schedule_classes(k: usize, n: usize) -> Vec<EnsembleSchedule> {
    let mut delays = vec![0u64; k];
    delays[k - 1] = 2;
    vec![
        EnsembleSchedule::simultaneous(k),
        EnsembleSchedule::start_delays(&delays),
        EnsembleSchedule::crash_last_after(k, n.div_ceil(2) as u64),
        EnsembleSchedule::intermittent_last(k, 2, 0),
    ]
}

#[test]
fn two_lane_ensemble_is_bit_for_bit_the_pair_engine() {
    // k = 2 is not "approximately" the pair engine — the ensemble loop
    // with two lanes must reproduce the pair runner's outcome, round,
    // crossing count and final positions exactly, for both θ-shaped and
    // genuinely scheduled adversaries.
    for (ti, t) in trees(0xD1FF, 4, 6).into_iter().enumerate() {
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        for tuple in feasible_tuples(&t, 2) {
            let (a, b) = (tuple[0], tuple[1]);
            for theta in [0u64, 1, 3] {
                let esched = EnsembleSchedule::start_delays(&[0, theta]);
                let budget = bw_budget(&t, &esched);
                let ens = step_ensemble(&t, &fsa, &tuple, &esched);
                let (mut x, mut y) = (fsa.runner_owned(), fsa.runner_owned());
                let pair =
                    run_pair_fsa(&t, a, b, &mut x, &mut y, PairConfig::delayed(theta, budget));
                assert_eq!(ens.outcome, pair.outcome, "tree {ti} ({a},{b}) θ={theta}");
                assert_eq!(ens.crossings, pair.crossings, "tree {ti} ({a},{b}) θ={theta}");
                assert_eq!(ens.finals[0].node, pair.final_a.node);
                assert_eq!(ens.finals[1].node, pair.final_b.node);
                // Replay and decide agree with the stepping verdict.
                let rep = replay_from_recordings(&t, &fsa, &tuple, &esched);
                assert_eq!(rep.outcome, ens.outcome);
                assert_eq!(rep.crossings, ens.crossings);
                let dec = decide_ensemble(&t, &fsa, &tuple, &esched);
                let pdec = decide_pair(&t, &fsa, a, b, theta);
                assert_eq!(dec.met(), pdec.met(), "tree {ti} ({a},{b}) θ={theta}");
                assert_eq!(dec.round(), pdec.round(), "tree {ti} ({a},{b}) θ={theta}");
                assert_eq!(dec.met(), ens.outcome.met());
                assert_eq!(dec.round(), ens.outcome.round());
            }
            // A genuinely scheduled adversary: one lane at half duty.
            let pair_sched = Schedule::new(vec![], vec![(true, true), (true, false)]);
            let esched = EnsembleSchedule::from_pair(&pair_sched);
            let budget = bw_budget(&t, &esched);
            let ens = step_ensemble(&t, &fsa, &tuple, &esched);
            let (mut x, mut y) = (fsa.runner_owned(), fsa.runner_owned());
            let pair = run_pair_scheduled_fsa(&t, a, b, &mut x, &mut y, &pair_sched, budget, false);
            assert_eq!(ens.outcome, pair.outcome, "tree {ti} ({a},{b}) intermittent");
            assert_eq!(ens.crossings, pair.crossings, "tree {ti} ({a},{b}) intermittent");
        }
    }
}

#[test]
fn three_lane_paths_agree_and_never_gathers_certificates_verify() {
    // decide ≡ replay ≡ run at k = 3, across the e11 schedule classes;
    // every never-gathers verdict must carry an ensemble lasso that
    // independent k-lane stepping re-verifies.
    let mut never_seen = 0u32;
    for (ti, t) in trees(0x3A6E, 3, 6).into_iter().enumerate() {
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let tuples = feasible_tuples(&t, 3);
        // The full tuple set is large; a lex-stride sample keeps the test
        // fast while still crossing orbit boundaries.
        for tuple in tuples.iter().step_by(7) {
            for (si, sched) in schedule_classes(3, t.num_nodes()).into_iter().enumerate() {
                let run = step_ensemble(&t, &fsa, tuple, &sched);
                let rep = replay_from_recordings(&t, &fsa, tuple, &sched);
                assert_eq!(run.outcome, rep.outcome, "tree {ti} {tuple:?} sched {si}");
                assert_eq!(run.crossings, rep.crossings, "tree {ti} {tuple:?} sched {si}");
                assert_eq!(run.pair_meetings, rep.pair_meetings, "tree {ti} {tuple:?} sched {si}");
                let dec = decide_ensemble(&t, &fsa, tuple, &sched);
                assert_eq!(dec.met(), run.outcome.met(), "tree {ti} {tuple:?} sched {si}");
                assert_eq!(dec.round(), run.outcome.round(), "tree {ti} {tuple:?} sched {si}");
                if !dec.met() {
                    never_seen += 1;
                    let lasso = dec.lasso().expect("never-gathers carries a lasso");
                    assert!(
                        verify_ensemble_lasso(&t, &fsa, tuple, &sched, lasso),
                        "bogus lasso: tree {ti} {tuple:?} sched {si}"
                    );
                }
            }
        }
    }
    assert!(never_seen > 0, "the sample must include certified never-gathers instances");
}
