//! Cross-checks between the three answer paths for a `(pair, delay)`
//! question — bounded stepping (`run_pair`), trace replay
//! (`delay_scan`/`replay_pair`) and the exact decider
//! (`rvz_lowerbounds::decide`) — focused on the delay-axis edge cases:
//! delay 0, delays past both fixed-point tails, and the fully symmetric
//! pair whose trajectories mirror each other forever.

use tree_rendezvous::agent::model::{bw_exit, Action, Agent, Obs};
use tree_rendezvous::agent::Fsa;
use tree_rendezvous::lowerbounds::decide::{
    decide_pair, verify_lasso, worst_case_delay, WorstCase,
};
use tree_rendezvous::sim::trace::{delay_scan, Replay, Trajectory};
use tree_rendezvous::sim::{run_pair, Outcome, PairConfig, TraceRecorder};
use tree_rendezvous::trees::generators::{colored_line, line, spider};
use tree_rendezvous::trees::{NodeId, Tree};

/// Records an FSA runner's solo trajectory through `rounds`.
fn record_fsa(t: &Tree, fsa: &Fsa, start: NodeId, rounds: u64) -> Trajectory {
    let mut rec = TraceRecorder::new(start, fsa.runner_owned(), Agent::memory_bits);
    rec.record_to(t, rounds);
    rec.trajectory().clone()
}

#[test]
fn recorded_first_visits_match_the_solo_lasso() {
    // The recorded timeline and the decider's solo configuration lasso
    // answer the same "when does A first step on B's home?" question —
    // the quantity that settles every large-delay cell.
    use tree_rendezvous::lowerbounds::decide::SoloLasso;
    for t in [line(9), spider(3, 4)] {
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        for start in [0u32, 3] {
            let solo = SoloLasso::tabulate(&t, &fsa, start);
            let horizon = 4 * t.num_nodes() as u64;
            let traj = record_fsa(&t, &fsa, start, horizon);
            assert_eq!(traj.first_visit(start), Some(0), "the start is its own round-0 visit");
            for node in 0..t.num_nodes() as NodeId {
                if node == start {
                    continue; // the trajectory reports round 0, the lasso the first return
                }
                assert_eq!(
                    traj.first_visit(node),
                    solo.first_visit(node).filter(|&r| r <= horizon),
                    "start={start} node={node}"
                );
            }
        }
    }
}

#[test]
fn delay_zero_column_matches_the_decider() {
    // Edge case 1: delay 0 — the simultaneous-start scenario — across
    // meeting and certified-never instances.
    for t in [line(9), spider(3, 3), colored_line(8, 1)] {
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let n = t.num_nodes() as u64;
        let budget = 4 * (n - 1) + 2; // the exact bw decision horizon at θ=0
        for (a, b) in [(0u32, (n - 1) as u32), (0, (n / 2) as u32), (1, (n - 2) as u32)] {
            if a == b {
                continue;
            }
            let ta = record_fsa(&t, &fsa, a, budget);
            let tb = record_fsa(&t, &fsa, b, budget);
            let verdicts = delay_scan(&t, &ta, &tb, &[(0, budget)]);
            let Replay::Decided(run) = &verdicts[0] else {
                panic!("recorded horizon must decide θ=0")
            };
            let decision = decide_pair(&t, &fsa, a, b, 0);
            assert_eq!(run.outcome.met(), decision.met(), "a={a} b={b}");
            assert_eq!(run.outcome.round(), decision.round(), "a={a} b={b}");
            if let Some(lasso) = decision.lasso() {
                assert!(verify_lasso(&t, &fsa, a, b, 0, lasso), "bogus lasso a={a} b={b}");
            }
        }
    }
}

#[test]
fn delay_past_both_fixed_point_tails_matches_the_decider() {
    // Edge case 2: a delay at least as large as both agents' fixed-point
    // tails. An absorbing automaton (walk two steps, then park forever)
    // stabilizes quickly; any delay past stabilization must replay and
    // decide identically — including the decider answering without
    // walking the delay.
    let t = line(7);
    // States: 0 → 1 → 2 (absorbing stay). λ = [1, 1, -1]: two moves by
    // port 1 (rightward on the canonical line), then park.
    let fsa = Fsa::from_fn(2, 3, vec![1, 1, -1], 0, |s, _entry, _d| (s + 1).min(2));
    let budget = 10_000u64;
    for (a, b) in [(0u32, 4u32), (0, 2), (4, 0), (6, 1)] {
        let ta = record_fsa(&t, &fsa, a, budget);
        let tb = record_fsa(&t, &fsa, b, budget);
        for delay in [100u64, 5_000, 9_000] {
            let verdicts = delay_scan(&t, &ta, &tb, &[(delay, budget)]);
            let Replay::Decided(run) = &verdicts[0] else {
                panic!("recorded horizon must decide θ={delay}")
            };
            let decision = decide_pair(&t, &fsa, a, b, delay);
            match run.outcome {
                Outcome::Met { round, .. } => {
                    assert_eq!(decision.round(), Some(round), "a={a} b={b} θ={delay}");
                }
                Outcome::Timeout { .. } => {
                    // Both parked apart: the replay times out at its
                    // budget, the decider *certifies* it.
                    let lasso = decision.lasso().expect("parked agents never meet");
                    assert_eq!(lasso.period, 1, "two parked agents cycle with period 1");
                    assert!(verify_lasso(&t, &fsa, a, b, delay, lasso));
                }
            }
        }
    }
}

#[test]
fn fixed_tails_settle_huge_budgets_and_the_decider_agrees() {
    // The replay path settles billion-round budgets from the tails only
    // when the recorder knows the agent halted; the test agent reports it.
    struct WalkThenHalt {
        moves: u64,
    }
    impl Agent for WalkThenHalt {
        fn act(&mut self, obs: Obs) -> Action {
            if self.moves == 0 {
                return Action::Stay;
            }
            self.moves -= 1;
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
        fn halted(&self) -> bool {
            self.moves == 0
        }
    }
    let t = line(7);
    // The same behavior as an absorbing FSA: 2 basic-walk steps, then park.
    let fsa = {
        let walk = Fsa::basic_walk(2);
        let k = walk.num_states();
        // States 0..2k walk (two phases), state 2k parks. Phase p state s
        // encodes "walk state s, p moves made".
        Fsa::from_fn(
            2,
            2 * k + 1,
            {
                let mut lambda: Vec<i64> = Vec::new();
                for _ in 0..2 {
                    lambda.extend(walk.lambda.iter().copied());
                }
                lambda.push(-1);
                lambda
            },
            walk.s0,
            move |s, entry, d| {
                let phase = s as usize / k;
                if phase >= 2 {
                    return 2 * k as u32;
                }
                let inner = walk.transition(s % k as u32, entry, d);
                ((phase + 1) * k) as u32 + if phase + 1 >= 2 { 0 } else { inner }
            },
        )
    };
    for (a, b) in [(0u32, 4u32), (6, 1)] {
        let mut rec_a = TraceRecorder::new(a, WalkThenHalt { moves: 2 }, |_| 0);
        let mut rec_b = TraceRecorder::new(b, WalkThenHalt { moves: 2 }, |_| 0);
        rec_a.record_to(&t, 10);
        rec_b.record_to(&t, 10);
        assert!(rec_a.trajectory().is_fixed() && rec_b.trajectory().is_fixed());
        // Budgets in the billions, delays at/beyond both tails: the merge
        // must decide instantly, and agree with the budget-free decider.
        for delay in [2u64, 50, 1_000_000_000] {
            let verdicts =
                delay_scan(&t, rec_a.trajectory(), rec_b.trajectory(), &[(delay, u64::MAX / 4)]);
            let Replay::Decided(run) = &verdicts[0] else { panic!("fixed tails must decide") };
            let decision = decide_pair(&t, &fsa, a, b, delay);
            assert_eq!(run.outcome.met(), decision.met(), "a={a} b={b} θ={delay}");
            assert_eq!(run.outcome.round(), decision.round(), "a={a} b={b} θ={delay}");
        }
    }
}

#[test]
fn mirror_symmetric_pair_is_certified_for_every_delay() {
    // Edge case 3: the fully symmetric instance — one properly-colored
    // edge, identical (mirrored) trajectories. Bounded simulation can only
    // report a timeout at its budget; the decider certifies never-meets at
    // θ=0, and the quantifier layer certifies the defeat in one shot.
    let t = colored_line(2, 0);
    let fsa = Fsa::basic_walk(1);
    let (ta, tb) = (record_fsa(&t, &fsa, 0, 64), record_fsa(&t, &fsa, 1, 64));
    // The two trajectories are exact mirrors: same round-by-round swap.
    for r in 0..=20u64 {
        assert_ne!(ta.position(r), tb.position(r), "round {r}");
    }
    let delays = [0u64, 1, 7];
    let columns: Vec<(u64, u64)> = delays.iter().map(|&d| (d, 64)).collect();
    let verdicts = delay_scan(&t, &ta, &tb, &columns);
    let decisions: Vec<_> = delays.iter().map(|&d| decide_pair(&t, &fsa, 0, 1, d)).collect();
    for ((v, d), &delay) in verdicts.iter().zip(&decisions).zip(&delays) {
        let Replay::Decided(run) = v else { panic!("horizon decides") };
        assert_eq!(run.outcome.met(), d.met(), "θ={delay}");
        assert_eq!(run.outcome.round(), d.round(), "θ={delay}");
        if let Some(lasso) = d.lasso() {
            assert!(verify_lasso(&t, &fsa, 0, 1, delay, lasso), "θ={delay}");
        }
    }
    // The universal verdict: delay 0 already defeats the pair.
    match worst_case_delay(&t, &fsa, 0, 1) {
        WorstCase::Defeated { delay, decision, .. } => {
            assert_eq!(delay, 0);
            assert!(verify_lasso(&t, &fsa, 0, 1, 0, decision.lasso().unwrap()));
        }
        WorstCase::AllMeet { .. } => panic!("the mirrored edge defeats the basic walk"),
    }
    // Direct stepping agrees at a modest budget.
    let mut x = fsa.runner();
    let mut y = fsa.runner();
    let run = run_pair(&t, 0, 1, &mut x, &mut y, PairConfig::simultaneous(50));
    assert!(!run.outcome.met());
    assert_eq!(run.crossings, decisions[0].crossings_within(50));
}
