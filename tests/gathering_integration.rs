//! Gathering (k ≥ 3) integration: the Theorem 4.1 agent gathers any number
//! of copies on trees whose contraction is not symmetric (§1.3 extension;
//! see `rvz-core::gathering` for the regime analysis).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tree_rendezvous::core::{gather, gatherable};
use tree_rendezvous::sim::Outcome;
use tree_rendezvous::trees::generators::{caterpillar, random_relabel, random_tree, spider, star};
use tree_rendezvous::trees::NodeId;

#[test]
fn gathers_k_agents_on_gatherable_families() {
    let trees = vec![star(8), spider(3, 5), spider(5, 3), caterpillar(4, &[2, 0, 0, 3])];
    let mut rng = StdRng::seed_from_u64(77);
    for t in trees {
        assert!(gatherable(&t), "these families have non-symmetric contractions");
        let n = t.num_nodes() as NodeId;
        for k in [3usize, 5] {
            let mut starts: Vec<NodeId> = (0..n).collect();
            starts.shuffle(&mut rng);
            starts.truncate(k.min(n as usize));
            let run = gather(&t, &starts, 2_000_000);
            assert!(
                matches!(run.outcome, Outcome::Met { .. }),
                "k={k} gathering failed on n={n} starts {starts:?}"
            );
            // Every pair must have met by the gathering round.
            assert!(run.pair_meetings.iter().all(|m| m.is_some()));
        }
    }
}

#[test]
fn gathers_on_random_gatherable_trees() {
    let mut rng = StdRng::seed_from_u64(555);
    let mut tested = 0;
    while tested < 6 {
        let t = random_relabel(&random_tree(14, &mut rng), &mut rng);
        if !gatherable(&t) {
            continue;
        }
        let starts = [0u32, 5, 9, 13];
        let run = gather(&t, &starts, 2_000_000);
        assert!(matches!(run.outcome, Outcome::Met { .. }), "gathering failed on {t:?}");
        tested += 1;
    }
}

#[test]
fn gathering_round_equals_last_pair_meeting() {
    let t = spider(4, 4);
    let starts = [1u32, 6, 11, 16];
    let run = gather(&t, &starts, 2_000_000);
    let Outcome::Met { round, .. } = run.outcome else {
        panic!("gatherable");
    };
    let last_pair = run.pair_meetings.iter().map(|m| m.unwrap()).max().unwrap();
    assert_eq!(round, last_pair, "the gathering round is the last pairwise meeting");
}
