//! Property-based tests (proptest) on the core invariants:
//!
//! * substrate: contraction laws, canonical-form invariance, perfect
//!   symmetrizability coherence;
//! * walks: the basic-walk period, Explo-bis reconstruction == ground
//!   truth;
//! * the Parity Lemma (4.4) on random automata;
//! * Lemma 4.1 feasibility ⇒ meeting for the prime protocol.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tree_rendezvous::agent::line_fsa::LineFsa;
use tree_rendezvous::agent::model::{bw_exit, Action, Agent, Obs, Step, SubAgent};
use tree_rendezvous::explore::ExploBis;
use tree_rendezvous::sim::{run_single, Cursor};
use tree_rendezvous::trees::canon::{canon_ports, unrooted_canon_structural};
use tree_rendezvous::trees::generators::{random_relabel, random_tree};
use tree_rendezvous::trees::symmetry::symmetrization_witness;
use tree_rendezvous::trees::{contract, perfectly_symmetrizable, NodeId, Tree};

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (2..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_relabel(&random_tree(n, &mut rng), &mut rng)
    })
}

struct BasicWalker;

impl Agent for BasicWalker {
    fn act(&mut self, obs: Obs) -> Action {
        Action::Move(bw_exit(obs.entry, obs.degree))
    }
    fn memory_bits(&self) -> u64 {
        0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn basic_walk_period_and_coverage(t in arb_tree(40), start in 0u32..40) {
        let start = start % t.num_nodes() as u32;
        let n = t.num_nodes() as u64;
        let run = run_single(&t, start, &mut BasicWalker, 2 * (n - 1), true);
        // §2.2: a basic walk of length 2(n−1) returns to its start…
        prop_assert_eq!(run.cursor.node, start);
        // …and is an Euler tour: every node visited.
        let trace = run.trace.unwrap();
        for v in 0..t.num_nodes() as NodeId {
            prop_assert!(trace.contains(&v), "node {} unvisited", v);
        }
    }

    #[test]
    fn csr_layout_matches_reference_adjacency(t in arb_tree(60)) {
        // Reference semantics of the pre-CSR nested-Vec builder: fill
        // `adj[u][p] = (neighbor, entry_port)` straight from the edge list
        // and demand the CSR accessors agree on every (node, port).
        use tree_rendezvous::trees::Port;
        let n = t.num_nodes();
        let edges = t.edges();
        let mut deg = vec![0usize; n];
        for e in &edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mut adj: Vec<Vec<Option<(NodeId, Port)>>> =
            deg.iter().map(|&d| vec![None; d]).collect();
        for e in &edges {
            prop_assert!(adj[e.u as usize][e.port_u as usize].replace((e.v, e.port_v)).is_none());
            prop_assert!(adj[e.v as usize][e.port_v as usize].replace((e.u, e.port_u)).is_none());
        }
        for u in 0..n as NodeId {
            prop_assert_eq!(t.degree(u) as usize, deg[u as usize], "degree at {}", u);
            let mut listed = t.neighbors(u);
            for p in 0..t.degree(u) {
                let (v, pv) = adj[u as usize][p as usize].expect("contiguous ports");
                prop_assert_eq!(t.neighbor(u, p), v, "neighbor at ({}, {})", u, p);
                prop_assert_eq!(t.entry_port(u, p), pv, "entry port at ({}, {})", u, p);
                prop_assert_eq!(listed.next(), Some((p, v, pv)));
            }
            prop_assert_eq!(listed.next(), None);
        }
    }

    #[test]
    fn from_edges_roundtrips_and_rejects_corruptions(t in arb_tree(40)) {
        use tree_rendezvous::trees::TreeError;
        let n = t.num_nodes();
        let edges = t.edges();
        // Round trip through the edge list rebuilds the identical tree.
        let rebuilt = Tree::from_edges(n, &edges).unwrap();
        prop_assert_eq!(&rebuilt, &t);
        // Dropping an edge: wrong count.
        prop_assert!(matches!(
            Tree::from_edges(n, &edges[..edges.len() - 1]),
            Err(TreeError::WrongEdgeCount { .. })
        ));
        // Duplicating an edge (same count): duplicate port at its endpoint.
        if edges.len() >= 2 {
            let mut dup = edges.clone();
            dup[1] = dup[0];
            prop_assert!(matches!(
                Tree::from_edges(n, &dup),
                Err(TreeError::DuplicatePort { .. })
            ));
        }
        // Port beyond the endpoint's degree: non-contiguous ports.
        let mut shifted = edges.clone();
        shifted[0].port_u += t.degree(shifted[0].u);
        prop_assert!(matches!(
            Tree::from_edges(n, &shifted),
            Err(TreeError::NonContiguousPorts { .. })
        ));
        // Self-loop.
        let mut looped = edges.clone();
        looped[0].v = looped[0].u;
        prop_assert!(matches!(Tree::from_edges(n, &looped), Err(TreeError::SelfLoop { .. })));
    }

    #[test]
    fn contraction_laws(t in arb_tree(60)) {
        let c = contract(&t);
        // Leaves preserved; ν ≤ 2ℓ − 1; no degree-2 survivors (when ν > 2).
        prop_assert_eq!(c.tree.num_leaves(), t.num_leaves());
        prop_assert!(c.num_nodes() <= 2 * t.num_leaves().max(1));
        if c.num_nodes() > 2 {
            for u in 0..c.num_nodes() as NodeId {
                prop_assert_ne!(c.tree.degree(u), 2);
            }
        }
        // Contraction is idempotent.
        let c2 = contract(&c.tree);
        prop_assert_eq!(c2.num_nodes(), c.num_nodes());
    }

    #[test]
    fn canon_invariant_under_node_renumbering(t in arb_tree(30), salt in any::<u64>()) {
        let n = t.num_nodes();
        // A deterministic pseudo-random node permutation.
        let mut sigma: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(salt);
        use rand::seq::SliceRandom;
        sigma.shuffle(&mut rng);
        let r = t.renumbered(&sigma).unwrap();
        let mark = 0 as NodeId;
        prop_assert_eq!(
            unrooted_canon_structural(&t, Some(mark)),
            unrooted_canon_structural(&r, Some(sigma[mark as usize]))
        );
    }

    #[test]
    fn perfect_symmetrizability_coherent(t in arb_tree(16)) {
        let n = t.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                let ps = perfectly_symmetrizable(&t, u, v);
                // Symmetric relation.
                prop_assert_eq!(ps, perfectly_symmetrizable(&t, v, u));
                if u != v {
                    // Matches the constructive witness exactly.
                    prop_assert_eq!(ps, symmetrization_witness(&t, u, v).is_some());
                }
            }
        }
    }

    #[test]
    fn explo_reconstructs_the_contraction(t in arb_tree(40)) {
        let start = (0..t.num_nodes() as NodeId).find(|&v| t.degree(v) != 2).unwrap();
        let mut e = ExploBis::new();
        let mut cur = Cursor::new(start);
        let mut rounds = 0u64;
        loop {
            match e.step(cur.obs(&t)) {
                Step::Done => break,
                Step::Move(p) => { cur.apply(&t, Action::Move(p)); rounds += 1; }
                Step::Stay => { rounds += 1; }
            }
            prop_assert!(rounds < 1_000_000);
        }
        prop_assert_eq!(cur.node, start);
        prop_assert_eq!(rounds, 2 * (t.num_nodes() as u64 - 1));
        let res = e.into_result().unwrap();
        let ground = contract(&t);
        prop_assert_eq!(res.nu as usize, ground.tree.num_nodes());
        let root = ground.t_to_tp[start as usize].unwrap();
        prop_assert_eq!(
            canon_ports(&res.tprime, 0, None, None),
            canon_ports(&ground.tree, root, None, None)
        );
    }

    #[test]
    fn canonical_ranks_pair_exactly_under_the_flip(t in arb_tree(20)) {
        use tree_rendezvous::trees::canon::canonical_ranks;
        use tree_rendezvous::trees::symmetry::port_preserving_flip;
        let ranks = canonical_ranks(&t);
        let flip = port_preserving_flip(&t);
        let n = t.num_nodes() as NodeId;
        for u in 0..n {
            for v in (u + 1)..n {
                let same = ranks[u as usize] == ranks[v as usize];
                let flipped = flip
                    .as_ref()
                    .map(|f| f[u as usize] == v)
                    .unwrap_or(false);
                prop_assert_eq!(
                    same, flipped,
                    "ranks collide iff the flip exchanges the nodes ({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn infinite_line_parities_are_mirrors(k in 1usize..8, seed in any::<u64>()) {
        use tree_rendezvous::lowerbounds::infinite_line::InfiniteRun;
        let mut rng = StdRng::seed_from_u64(seed);
        let fsa = LineFsa::random(k, 0.3, &mut rng);
        let run0: Vec<i64> =
            InfiniteRun::new(&fsa, 0).take(300).map(|a| a.pos).collect();
        let run1: Vec<i64> =
            InfiniteRun::new(&fsa, 1).take(300).map(|a| a.pos).collect();
        for (p0, p1) in run0.iter().zip(run1.iter()) {
            prop_assert_eq!(*p0, -*p1, "parity-1 trajectory mirrors parity-0");
        }
    }

    #[test]
    fn parity_lemma_holds_for_random_automata(
        k in 1usize..6,
        seed in any::<u64>(),
        gap in 0u32..4,
    ) {
        // Lemma 4.4: two identical agents at odd initial distance; if after
        // t rounds their stay-counts differ by an even number, they are at
        // odd distance (in particular, not co-located).
        let mut rng = StdRng::seed_from_u64(seed);
        let fsa = LineFsa::random(k, 0.3, &mut rng);
        let line = tree_rendezvous::trees::generators::colored_line(40, 0);
        let (a0, b0) = (10u32, 10 + 2 * gap + 1); // odd distance
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let mut ca = Cursor::new(a0);
        let mut cb = Cursor::new(b0);
        let (mut stays_a, mut stays_b) = (0i64, 0i64);
        for _ in 0..400 {
            let act_a = x.act(ca.obs(&line));
            let act_b = y.act(cb.obs(&line));
            if !ca.apply(&line, act_a) { stays_a += 1; }
            if !cb.apply(&line, act_b) { stays_b += 1; }
            let dist = (ca.node as i64 - cb.node as i64).abs();
            if (stays_a - stays_b) % 2 == 0 {
                prop_assert_eq!(dist % 2, 1, "Parity Lemma violated");
            }
        }
    }

    #[test]
    fn trace_replay_matches_direct_stepping(
        t in arb_tree(14),
        a in 0u32..14,
        b in 0u32..14,
        delay in 0u64..40,
        variant in 0usize..4,
    ) {
        // ISSUE 3 differential: `replay_pair` over recorded trajectories
        // must reproduce `run_pair` exactly — outcome, meeting round,
        // crossing count, final cursors and traces — for every agent
        // variant, delay and start pair. Trees are random (lines for the
        // paths-only `prime` protocol).
        use tree_rendezvous::core::prime_path::PrimePathAgent;
        use tree_rendezvous::core::{DelayRobustAgent, TreeRendezvousAgent};
        use tree_rendezvous::sim::trace::Replay;
        use tree_rendezvous::sim::{replay_pair, run_pair, PairConfig, TraceRecorder};

        let t = if variant == 2 {
            // prime runs on paths; reuse the random size for a line.
            tree_rendezvous::trees::generators::line(t.num_nodes().max(2))
        } else {
            t
        };
        let n = t.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let budget = 20_000u64;
        let cfg = PairConfig { delay, max_rounds: budget, record_traces: true };

        // Record both trajectories with the same meter the stepping run
        // reports, then replay; extend on demand exactly like the sweep
        // executor does.
        macro_rules! diff {
            ($mk:expr, $bits:expr) => {{
                let mut rec_a = TraceRecorder::new(a, $mk, $bits);
                let mut rec_b = TraceRecorder::new(b, $mk, $bits);
                let replayed = loop {
                    match replay_pair(&t, rec_a.trajectory(), rec_b.trajectory(), cfg) {
                        Replay::Decided(run) => break run,
                        Replay::NeedMore { a_rounds, b_rounds } => {
                            rec_a.record_to(&t, a_rounds.max(2 * rec_a.trajectory().rounds()));
                            rec_b.record_to(&t, b_rounds.max(2 * rec_b.trajectory().rounds()));
                        }
                    }
                };
                let mut x = $mk;
                let mut y = $mk;
                let direct = run_pair(&t, a, b, &mut x, &mut y, cfg);
                prop_assert_eq!(&replayed.outcome, &direct.outcome);
                prop_assert_eq!(replayed.crossings, direct.crossings);
                prop_assert_eq!(replayed.final_a, direct.final_a);
                prop_assert_eq!(replayed.final_b, direct.final_b);
                prop_assert_eq!(&replayed.trace_a, &direct.trace_a);
                prop_assert_eq!(&replayed.trace_b, &direct.trace_b);
                // The recorded meter marks must reproduce the stepping
                // meters at the run's end (what SweepRow reports).
                let acts_a = direct.outcome.round().unwrap_or(budget);
                let acts_b = acts_a.saturating_sub(delay);
                let bits_fn: fn(&_) -> u64 = $bits;
                prop_assert_eq!(rec_a.trajectory().bits_at(acts_a), bits_fn(&x));
                prop_assert_eq!(rec_b.trajectory().bits_at(acts_b), bits_fn(&y));
            }};
        }
        match variant {
            0 => diff!(TreeRendezvousAgent::new(), TreeRendezvousAgent::memory_bits_measured),
            1 => diff!(DelayRobustAgent::new(), DelayRobustAgent::memory_bits_measured),
            2 => diff!(PrimePathAgent::unbounded(), Agent::memory_bits),
            _ => {
                let fsa = tree_rendezvous::agent::Fsa::basic_walk(
                    t.max_degree().max(1),
                );
                diff!(fsa.runner_owned(), Agent::memory_bits)
            }
        }
    }

    #[test]
    fn exact_decider_agrees_with_stepping_and_replay(
        t in arb_tree(12),
        a in 0u32..12,
        b in 0u32..12,
        delay in 0u64..30,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        // ISSUE 4 differential: the budget-free decider vs the two bounded
        // executors, on the basic-walk automaton (whose budget is an exact
        // decision horizon — replay timeout ⟺ certified never-meets) and
        // on arbitrary random automata (agreement wherever the bounded run
        // decides). Any mismatch in meeting round, timeout status or
        // crossing count fails.
        use tree_rendezvous::agent::Fsa;
        use tree_rendezvous::lowerbounds::decide::{decide_pair, verify_lasso};
        use tree_rendezvous::sim::trace::Replay;
        use tree_rendezvous::sim::{replay_pair, run_pair, PairConfig, TraceRecorder};

        let n = t.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let max_degree = t.max_degree().max(1);
        for (horizon_exact, fsa) in [
            (true, Fsa::basic_walk(max_degree)),
            (false, Fsa::random(k, max_degree, 0.25, &mut StdRng::seed_from_u64(seed))),
        ] {
            let budget = delay + 8 * n as u64 + 8;
            let cfg = PairConfig { delay, max_rounds: budget, record_traces: false };

            let decision = decide_pair(&t, &fsa, a, b, delay);
            if let Some(lasso) = decision.lasso() {
                prop_assert!(verify_lasso(&t, &fsa, a, b, delay, lasso));
            }

            // Stepping.
            let mut x = fsa.runner();
            let mut y = fsa.runner();
            let direct = run_pair(&t, a, b, &mut x, &mut y, cfg);

            // Replay over recorded trajectories.
            let mut rec_a = TraceRecorder::new(a, fsa.runner_owned(), Agent::memory_bits);
            let mut rec_b = TraceRecorder::new(b, fsa.runner_owned(), Agent::memory_bits);
            let replayed = loop {
                match replay_pair(&t, rec_a.trajectory(), rec_b.trajectory(), cfg) {
                    Replay::Decided(run) => break run,
                    Replay::NeedMore { a_rounds, b_rounds } => {
                        rec_a.record_to(&t, a_rounds.max(2 * rec_a.trajectory().rounds()));
                        rec_b.record_to(&t, b_rounds.max(2 * rec_b.trajectory().rounds()));
                    }
                }
            };
            prop_assert_eq!(&replayed.outcome, &direct.outcome);
            prop_assert_eq!(replayed.crossings, direct.crossings);

            match direct.outcome {
                tree_rendezvous::sim::Outcome::Met { round, .. } => {
                    prop_assert_eq!(decision.round(), Some(round));
                    prop_assert_eq!(decision.crossings_within(round), direct.crossings);
                }
                tree_rendezvous::sim::Outcome::Timeout { .. } => {
                    // The decider may know a meeting beyond the bounded
                    // budget for arbitrary automata; for the basic walk the
                    // budget is a decision horizon, so timeout must mean a
                    // certified never-meets.
                    if horizon_exact {
                        prop_assert!(!decision.met(), "bw timeout must be a certified refusal");
                    }
                    if !decision.met() {
                        prop_assert_eq!(
                            decision.crossings_within(budget),
                            direct.crossings,
                            "closed-form crossing count diverged at the budget"
                        );
                    } else {
                        prop_assert!(decision.round().unwrap() > budget);
                    }
                }
            }
        }
    }

    #[test]
    fn start_delay_schedules_are_the_legacy_delay_path(
        t in arb_tree(12),
        a in 0u32..12,
        b in 0u32..12,
        theta in 0u64..40,
    ) {
        // ISSUE 5 satellite: `Schedule::start_delay(θ)` must reproduce the
        // compact `PairConfig::delayed(θ)` path bit for bit — stepping,
        // replay, and the decider.
        use tree_rendezvous::agent::Fsa;
        use tree_rendezvous::lowerbounds::decide::{decide_pair, decide_pair_scheduled};
        use tree_rendezvous::sim::trace::Replay;
        use tree_rendezvous::sim::{
            replay_pair, replay_pair_scheduled, run_pair, run_pair_scheduled, PairConfig,
            Schedule, TraceRecorder,
        };

        let n = t.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let budget = theta + 8 * n as u64 + 8;
        let sched = Schedule::start_delay(theta);
        let cfg = PairConfig { delay: theta, max_rounds: budget, record_traces: true };

        // Stepping.
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let legacy = run_pair(&t, a, b, &mut x, &mut y, cfg);
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let scheduled = run_pair_scheduled(&t, a, b, &mut x, &mut y, &sched, budget, true);
        prop_assert_eq!(&scheduled.outcome, &legacy.outcome);
        prop_assert_eq!(scheduled.crossings, legacy.crossings);
        prop_assert_eq!(scheduled.final_a, legacy.final_a);
        prop_assert_eq!(scheduled.final_b, legacy.final_b);
        prop_assert_eq!(&scheduled.trace_a, &legacy.trace_a);
        prop_assert_eq!(&scheduled.trace_b, &legacy.trace_b);

        // Replay over the same recordings.
        let mut rec_a = TraceRecorder::new(a, fsa.runner_owned(), Agent::memory_bits);
        let mut rec_b = TraceRecorder::new(b, fsa.runner_owned(), Agent::memory_bits);
        rec_a.record_to(&t, budget);
        rec_b.record_to(&t, budget);
        let legacy_replay = replay_pair(&t, rec_a.trajectory(), rec_b.trajectory(), cfg);
        let sched_replay =
            replay_pair_scheduled(&t, rec_a.trajectory(), rec_b.trajectory(), &sched, budget, true);
        match (legacy_replay, sched_replay) {
            (Replay::Decided(l), Replay::Decided(s)) => {
                prop_assert_eq!(&s.outcome, &l.outcome);
                prop_assert_eq!(s.crossings, l.crossings);
                prop_assert_eq!(s.final_a, l.final_a);
                prop_assert_eq!(s.final_b, l.final_b);
                prop_assert_eq!(&s.trace_a, &l.trace_a);
                prop_assert_eq!(&s.trace_b, &l.trace_b);
            }
            (l, s) => prop_assert!(false, "full recordings must decide: {:?} vs {:?}", l, s),
        }

        // Decider.
        if a != b {
            let fixed = decide_pair(&t, &fsa, a, b, theta);
            let sched_decision = decide_pair_scheduled(&t, &fsa, a, b, &sched);
            prop_assert_eq!(fixed.round(), sched_decision.round());
            if !fixed.met() {
                prop_assert_eq!(
                    fixed.crossings_within(budget),
                    sched_decision.crossings_within(budget)
                );
            }
        }
    }

    #[test]
    fn scheduled_engines_agree_on_random_schedules(
        t in arb_tree(8),
        a in 0u32..8,
        b in 0u32..8,
        shape in 0usize..4,
        param in 0u64..6,
    ) {
        // ISSUE 5 satellite: stepping, trace replay and the cycle-position
        // decider must agree on intermittent/crash/adversarial schedules
        // for random trees n ≤ 8 (the bw schedule budget is a decision
        // horizon, so a bounded timeout ⟺ a certified never-meets).
        use tree_rendezvous::agent::Fsa;
        use tree_rendezvous::lowerbounds::decide::{
            decide_pair_scheduled, verify_schedule_lasso,
        };
        use tree_rendezvous::sim::trace::Replay;
        use tree_rendezvous::sim::{
            replay_pair_scheduled, run_pair_scheduled, Schedule, TraceRecorder,
        };

        let n = t.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let sched = match shape {
            0 => Schedule::intermittent(2 + param % 3, param % 2),
            1 => Schedule::crash_after(param),
            2 => Schedule::new(
                Vec::new(),
                (0..=param).map(|i| (i == 0, i == 0)).collect(),
            ),
            _ => Schedule::adversarial(param, 6, 4),
        };
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        // The exact schedule decision horizon for the basic walk.
        let budget = sched.prefix_len()
            + sched.cycle_len() * (4 * (t.num_nodes() as u64 - 1) + 2);

        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let direct = run_pair_scheduled(&t, a, b, &mut x, &mut y, &sched, budget, false);

        let mut rec_a = TraceRecorder::new(a, fsa.runner_owned(), Agent::memory_bits);
        let mut rec_b = TraceRecorder::new(b, fsa.runner_owned(), Agent::memory_bits);
        let replayed = loop {
            match replay_pair_scheduled(
                &t, rec_a.trajectory(), rec_b.trajectory(), &sched, budget, false,
            ) {
                Replay::Decided(run) => break run,
                Replay::NeedMore { a_rounds, b_rounds } => {
                    rec_a.record_to(&t, a_rounds.max(2 * rec_a.trajectory().rounds()));
                    rec_b.record_to(&t, b_rounds.max(2 * rec_b.trajectory().rounds()));
                }
            }
        };
        prop_assert_eq!(&replayed.outcome, &direct.outcome);
        prop_assert_eq!(replayed.crossings, direct.crossings);

        let decision = decide_pair_scheduled(&t, &fsa, a, b, &sched);
        match direct.outcome {
            tree_rendezvous::sim::Outcome::Met { round, .. } => {
                prop_assert_eq!(decision.round(), Some(round));
                prop_assert_eq!(decision.crossings_within(round), direct.crossings);
            }
            tree_rendezvous::sim::Outcome::Timeout { .. } => {
                prop_assert!(
                    !decision.met(),
                    "bw schedule budget must be a decision horizon"
                );
                let lasso = decision.lasso().expect("never-meets carries a lasso");
                prop_assert!(verify_schedule_lasso(&t, &fsa, a, b, &sched, lasso));
                prop_assert_eq!(decision.crossings_within(budget), direct.crossings);
            }
        }
    }

    #[test]
    fn budget_arithmetic_saturates_on_extreme_inputs(
        n in any::<usize>(),
        delay in any::<u64>(),
    ) {
        // ISSUE 5 satellite: the budget formulas must never panic —
        // extreme delays and sizes clamp to u64::MAX instead of
        // overflowing in debug builds.
        use rvz_bench::sweep::{basic_walk_budget_for, budget_for};
        let b = basic_walk_budget_for(n, delay);
        prop_assert!(b >= delay.min(u64::MAX - 1), "budget covers the delay (or saturates)");
        let g = budget_for(n);
        prop_assert!(g >= 2_000_000u64.min(g));
    }

    #[test]
    fn prime_protocol_meets_when_feasible(
        m in 4usize..24,
        a in 1usize..24,
        b in 1usize..24,
        dirs in (0u32..2, 0u32..2),
    ) {
        use tree_rendezvous::core::prime_path::PrimePathAgent;
        use tree_rendezvous::sim::{run_pair, PairConfig};
        let (a, b) = (a % m + 1, b % m + 1);
        prop_assume!(a < b);
        let feasible = m % 2 == 1 || (a - 1) != (m - b);
        prop_assume!(feasible);
        let t = tree_rendezvous::trees::generators::line(m);
        let mut x = PrimePathAgent::with_start_port(dirs.0);
        let mut y = PrimePathAgent::with_start_port(dirs.1);
        let run = run_pair(
            &t,
            (a - 1) as u32,
            (b - 1) as u32,
            &mut x,
            &mut y,
            PairConfig::simultaneous(2_000_000),
        );
        prop_assert!(run.outcome.met(), "m={} a={} b={}", m, a, b);
    }
}

proptest! {
    // Each case runs four full sweeps (auto + the three fixed executors),
    // so the case count stays small; the grid axes still cover every
    // variant, four tree families and five delay-axis shapes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn auto_planner_matches_every_fixed_executor_on_random_grids(
        family in 0usize..4,
        size in 4usize..9,
        delay_shape in 0usize..5,
        param in 0u64..4,
        seed in any::<u64>(),
    ) {
        // ISSUE 9 differential: `Executor::Auto` is a pure re-routing
        // layer. On random small grids — tree family × size × delay axis
        // (θ, linear, schedules, the ∀-delay quantifier) × every agent
        // variant — its rows must match each fixed executor's modulo the
        // per-executor annotations (`certified`, `planned`), and every
        // auto row must carry the planner's record.
        use rvz_bench::sweep::{self, Delay, Executor, Family, ScheduleSpec, Variant};

        let family =
            [Family::Line, Family::Spider3, Family::Random, Family::CompleteBinary][family];
        let delays = match delay_shape {
            0 => vec![Delay::Zero, Delay::Fixed(param)],
            1 => vec![Delay::Fixed(param), Delay::LinearN],
            2 => vec![
                Delay::Schedule(ScheduleSpec::Intermittent {
                    period: 2 + param % 3,
                    phase: param % 2,
                }),
                Delay::Fixed(param),
            ],
            3 => vec![
                Delay::Schedule(ScheduleSpec::Lockstep { period: 2 + param % 2 }),
                Delay::Schedule(ScheduleSpec::CrashAfter(param)),
            ],
            _ => vec![Delay::Adversarial, Delay::Zero],
        };
        let spec = |executor| sweep::SweepSpec {
            experiment: "auto-prop".into(),
            families: vec![family],
            sizes: vec![size],
            delays: delays.clone(),
            variants: vec![
                Variant::TreeRvz,
                Variant::DelayRobust,
                Variant::PrimePath,
                Variant::BasicWalkFsa,
            ],
            pairs_per_cell: 2,
            seed,
            threads: 1,
            executor,
            agents: 2,
        };
        let strip = |rows: &[sweep::SweepRow]| {
            let mut rows = rows.to_vec();
            for r in &mut rows {
                r.certified = false;
                r.planned = None;
            }
            serde_json::to_string(&rows).expect("serialize")
        };

        let auto = sweep::run(&spec(Executor::Auto));
        prop_assert!(!auto.rows.is_empty(), "the grid filter emptied the spec");
        for row in &auto.rows {
            prop_assert!(row.planned.is_some(), "unannotated auto row");
        }
        let reference = strip(&auto.rows);
        for executor in [Executor::TraceReplay, Executor::DynStepping, Executor::ExactDecide] {
            let fixed = sweep::run(&spec(executor));
            prop_assert_eq!(
                &reference,
                &strip(&fixed.rows),
                "auto diverged from {:?}",
                executor
            );
        }
    }
}

#[test]
fn perfectly_symmetrizable_requires_central_edge_halves() {
    // Deterministic companion to the proptest: the classical examples.
    use tree_rendezvous::trees::generators::{complete_binary, line};
    assert!(!perfectly_symmetrizable(&line(9), 0, 8));
    assert!(perfectly_symmetrizable(&line(10), 0, 9));
    let cb = complete_binary(2);
    for u in 0..cb.num_nodes() as NodeId {
        for v in 0..cb.num_nodes() as NodeId {
            if u != v {
                assert!(!perfectly_symmetrizable(&cb, u, v));
            }
        }
    }
}
