//! End-to-end activation-schedule scenarios across all four execution
//! layers: the scheduled simulator (`rvz_sim::run_pair_scheduled`), the
//! schedule-aware trace replay (`rvz_sim::schedule_scan`), the
//! cycle-position exact decider
//! (`rvz_lowerbounds::decide_pair_scheduled` / `worst_case_schedule`),
//! and the sweep engine's `Delay::Schedule` axis (e10).

use rvz_bench::sweep::{self, Delay, Executor, Family, ScheduleSpec, SweepSpec, Variant};
use tree_rendezvous::agent::Fsa;
use tree_rendezvous::lowerbounds::decide::{
    decide_pair_scheduled, verify_schedule_lasso, worst_case_schedule, ScheduleWorstCase,
};
use tree_rendezvous::sim::trace::Replay;
use tree_rendezvous::sim::{schedule_scan, Schedule, TraceRecorder};
use tree_rendezvous::trees::generators::line;

/// The basic walk on a 9-line, pair (0, 6): the e9 story told through
/// schedules — simultaneous meets, θ=1 shifts the timeline, intermittence
/// changes the round again, and a crashed partner is met at home.
#[test]
fn schedule_column_is_answered_from_two_recordings() {
    let t = line(9);
    let fsa = Fsa::basic_walk(t.max_degree().max(1));
    use tree_rendezvous::agent::model::Agent;
    let mut rec_a = TraceRecorder::new(0, fsa.runner_owned(), Agent::memory_bits);
    let mut rec_b = TraceRecorder::new(6, fsa.runner_owned(), Agent::memory_bits);
    rec_a.record_to(&t, 200);
    rec_b.record_to(&t, 200);
    let columns = [
        (Schedule::simultaneous(), 200u64),
        (Schedule::start_delay(1), 200),
        (Schedule::intermittent(2, 0), 200),
        (Schedule::intermittent(3, 0), 200),
        (Schedule::crash_after(0), 200),
    ];
    let verdicts = schedule_scan(&t, rec_a.trajectory(), rec_b.trajectory(), &columns);
    assert_eq!(verdicts.len(), 5);
    for ((sched, _), verdict) in columns.iter().zip(&verdicts) {
        let Replay::Decided(run) = verdict else {
            panic!("200 recorded rounds decide every column: {sched:?}")
        };
        // Replay must agree with the budget-free decider on every column.
        let decision = decide_pair_scheduled(&t, &fsa, 0, 6, sched);
        assert_eq!(run.outcome.round(), decision.round(), "{sched:?}");
        assert_eq!(run.outcome.met(), decision.met(), "{sched:?}");
    }
    // The crash column: B parked at 6 from the start, A's endpoint walk
    // arrives at round 6.
    let Replay::Decided(crash) = &verdicts[4] else { panic!() };
    assert_eq!(crash.outcome.round(), Some(6));
}

#[test]
fn worst_case_schedule_certifies_class_defeats_end_to_end() {
    let t = line(9);
    let fsa = Fsa::basic_walk(t.max_degree().max(1));
    // A class with only meeting scenarios vs one containing a defeat.
    let benign = [Schedule::crash_after(0), Schedule::crash_after(1)];
    let wc = worst_case_schedule(&t, &fsa, 0, 6, &benign);
    assert!(wc.all_meet(), "a crashed agent is met at home");
    let with_lockstep = [
        Schedule::crash_after(0),
        // Global stalls dilate the simultaneous scenario: pair (0, 5) is
        // at odd distance, so the dilated shuttle never meets.
        Schedule::new(Vec::new(), vec![(true, true), (false, false)]),
    ];
    match worst_case_schedule(&t, &fsa, 0, 5, &with_lockstep) {
        ScheduleWorstCase::Defeated { index, decision } => {
            assert_eq!(index, 1);
            let lasso = decision.lasso().expect("defeat carries a lasso");
            assert!(verify_schedule_lasso(&t, &fsa, 0, 5, &with_lockstep[index], lasso));
            // The lasso's period respects the 2-round cycle.
            assert!(lasso.period.is_multiple_of(2));
        }
        ScheduleWorstCase::AllMeet { .. } => panic!("the dilated shuttle never meets"),
    }
}

/// The sweep engine's schedule axis, end to end: an e10-shaped grid run
/// under all three executors produces identical outcomes, certified only
/// by the decider, with `schedule` labels on genuine schedule rows.
#[test]
fn sweep_schedule_axis_runs_certified_end_to_end() {
    let spec = |executor| SweepSpec {
        experiment: "sched-e2e".into(),
        families: vec![Family::EnumFree],
        sizes: vec![5, 6],
        delays: vec![
            Delay::Schedule(ScheduleSpec::Simultaneous),
            Delay::Schedule(ScheduleSpec::StartDelay(1)),
            Delay::Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 }),
            Delay::Schedule(ScheduleSpec::Lockstep { period: 2 }),
            Delay::Schedule(ScheduleSpec::CrashAfterHalfN),
        ],
        variants: vec![Variant::BasicWalkFsa],
        pairs_per_cell: 2, // ignored: the enumerated pair axis is exhaustive
        seed: 99,
        threads: 2,
        executor,
        agents: 2,
    };
    let decided = sweep::run(&spec(Executor::ExactDecide));
    let replayed = sweep::run(&spec(Executor::TraceReplay));
    assert_eq!(decided.rows.len(), replayed.rows.len());
    assert!(decided.rows.iter().all(|r| r.certified));
    assert!(replayed.rows.iter().all(|r| !r.certified));
    for (d, r) in decided.rows.iter().zip(&replayed.rows) {
        assert_eq!(d.met, r.met, "{d:?}");
        assert_eq!(d.rounds, r.rounds, "{d:?}");
        assert_eq!(d.schedule, r.schedule, "{d:?}");
        assert_eq!(d.cell_seed, r.cell_seed, "{d:?}");
    }
    // Genuine schedules carry labels; the θ-shaped columns are legacy rows.
    let labels: std::collections::BTreeSet<&str> =
        decided.rows.iter().filter_map(|r| r.schedule.as_deref()).collect();
    assert!(labels.contains("intermittent(2,0)"), "{labels:?}");
    assert!(labels.contains("lockstep(2)"), "{labels:?}");
    assert!(labels.iter().any(|l| l.starts_with("crash-after(")), "{labels:?}");
    assert!(decided.rows.iter().any(|r| r.schedule.is_none() && r.delay == 1), "θ=1 column");
    // Lockstep dilates the simultaneous scenario: identical met/never
    // per pair, and its never-meets certificates carry the label and
    // verify.
    let outcome_by = |label: Option<&str>, delay: u64| -> Vec<(u64, u32, u32, bool)> {
        decided
            .rows
            .iter()
            .filter(|r| r.schedule.as_deref() == label && r.delay == delay)
            .map(|r| (r.tree_seed, r.start_a, r.start_b, r.met))
            .collect()
    };
    assert_eq!(outcome_by(None, 0), outcome_by(Some("lockstep(2)"), 0));
    let lockstep_certs = decided
        .certificates
        .iter()
        .filter(|c| c.schedule.as_deref() == Some("lockstep(2)"))
        .count();
    assert!(lockstep_certs > 0, "the dilated shuttle pairs are certified never-meets");
    for cert in &decided.certificates {
        assert_eq!(cert.verified, Some(true), "{cert:?}");
    }
}
