//! The upper and lower bounds, cross-validated against each other — the
//! consistency checks that make the reproduction more than the sum of its
//! crates:
//!
//! * instances that *defeat* a bounded automaton under the adversaries are
//!   perfectly fine for the paper's algorithms (delay-0 agent on the
//!   Thm 4.2 instance; delay-robust baseline on the Thm 3.1 instance);
//! * the unbounded `prime` protocol meets on the very line that defeats its
//!   memory-capped, compiled sibling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tree_rendezvous::agent::compile::compile_line_agent;
use tree_rendezvous::agent::line_fsa::LineFsa;
use tree_rendezvous::core::prime_path::PrimePathAgent;
use tree_rendezvous::core::{DelayRobustAgent, TreeRendezvousAgent};
use tree_rendezvous::lowerbounds::{delay_attack, sync_attack};
use tree_rendezvous::sim::{run_pair, PairConfig};

#[test]
fn our_agent_meets_on_sync_attack_instances() {
    // Whatever line the Thm 4.2 adversary builds against a random bounded
    // automaton, the (unbounded-counter) Theorem 4.1 agent meets on it with
    // delay zero from the same starts.
    let mut rng = StdRng::seed_from_u64(404);
    let mut tested = 0;
    while tested < 5 {
        let fsa = LineFsa::random(4, 0.25, &mut rng);
        let Ok(attack) = sync_attack::sync_attack(&fsa, 4_096) else {
            continue;
        };
        let budget = (attack.line.num_nodes() as u64).pow(2) * 50_000 + 1_000_000;
        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        let run = run_pair(
            &attack.line,
            attack.start_a,
            attack.start_b,
            &mut x,
            &mut y,
            PairConfig::simultaneous(budget),
        );
        assert!(
            run.outcome.met(),
            "Theorem 4.1 agent must meet on the {}-edge attack line",
            attack.line.num_edges()
        );
        tested += 1;
    }
}

#[test]
fn baseline_meets_on_delay_attack_instances() {
    // Whatever line+θ the Thm 3.1 adversary builds against a random bounded
    // automaton, the O(log n) baseline meets under the same delay.
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..5 {
        let fsa = LineFsa::random(6, 0.25, &mut rng);
        let attack = delay_attack::delay_attack(&fsa).expect("adversary wins");
        let n = attack.line.num_nodes() as u64;
        let budget = 8 * n * 16 * n * 4 + attack.theta + 500_000;
        let mut x = DelayRobustAgent::new();
        let mut y = DelayRobustAgent::new();
        let run = run_pair(
            &attack.line,
            attack.start_a,
            attack.start_b,
            &mut x,
            &mut y,
            PairConfig::delayed(attack.theta, budget),
        );
        assert!(
            run.outcome.met(),
            "baseline must meet on the {}-edge attack line with θ = {}",
            attack.line.num_edges(),
            attack.theta
        );
    }
}

#[test]
fn unbounded_prime_meets_where_its_capped_sibling_fails() {
    // The Thm 4.2 adversary defeats the capped, compiled prime protocol;
    // the unbounded protocol meets on the same instance.
    let compiled =
        compile_line_agent(|| PrimePathAgent::cycling(1), 100_000).expect("finite-state");
    let attack = sync_attack::sync_attack(&compiled, 1 << 22).expect("capped sibling defeated");
    let m = attack.line.num_nodes();
    // Blind-agent feasibility: positions x+1 and x+2 (1-based) on an
    // (x + x' + 2)-node path: a−1 = x ≠ x' = m−b since the adversary
    // guarantees x ≠ x'.
    let mut x = PrimePathAgent::unbounded();
    let mut y = PrimePathAgent::unbounded();
    let budget = (m as u64).pow(2) * 2_000 + 10_000_000;
    let run = run_pair(
        &attack.line,
        attack.start_a,
        attack.start_b,
        &mut x,
        &mut y,
        PairConfig::simultaneous(budget),
    );
    assert!(
        run.outcome.met(),
        "unbounded prime must meet on the {}-edge line that defeats prime-cycle(1)",
        attack.line.num_edges()
    );
}

#[test]
fn compiled_prime_agent_behaves_like_the_procedural_one() {
    // Sanity for the compiler at integration level: simulate both on a
    // random colored line from the same start and compare positions.
    use tree_rendezvous::agent::model::{Agent, Obs};
    let compiled =
        compile_line_agent(|| PrimePathAgent::cycling(2), 100_000).expect("finite-state");
    let line = tree_rendezvous::trees::generators::colored_line(31, 0);
    let mut proc_agent = PrimePathAgent::cycling(2);
    let mut fsa_agent = compiled.runner();
    let mut pos_p: u32 = 15;
    let mut pos_f: u32 = 15;
    let mut entry_p = None;
    let mut entry_f = None;
    for round in 0..5_000 {
        let obs_p = Obs { entry: entry_p, degree: line.degree(pos_p) };
        let obs_f = Obs { entry: entry_f, degree: line.degree(pos_f) };
        let ap = proc_agent.act(obs_p);
        let af = fsa_agent.act(obs_f);
        match ap.port(obs_p.degree) {
            None => entry_p = None,
            Some(p) => {
                entry_p = Some(line.entry_port(pos_p, p));
                pos_p = line.neighbor(pos_p, p);
            }
        }
        match af.port(obs_f.degree) {
            None => entry_f = None,
            Some(p) => {
                entry_f = Some(line.entry_port(pos_f, p));
                pos_f = line.neighbor(pos_f, p);
            }
        }
        assert_eq!(pos_p, pos_f, "diverged at round {round}");
    }
}
