//! Exact decision vs bounded simulation, on every small tree.
//!
//! Enumerates all free trees on `n` nodes (WROM order), points the §2.2
//! basic-walk automaton at every ordered feasible start pair, and decides
//! each instance **exactly**: no round budget, never-meets certified by a
//! lasso, and the universal "does any delay defeat this pair?" question
//! answered by one fixed-point computation. This is the paper's memory-gap
//! mechanism as a certified statement about the whole instance space: the
//! memoryless walk meets plenty of pairs at simultaneous start, yet *every*
//! pair falls to a start delay of at most 1 (both agents always move, so a
//! single solo round flips the distance parity for good).
//!
//! Claim demonstrated: the **e9 exhaustive certification** interactively
//! (`--experiment e9` runs it over every default size; see
//! docs/executors.md).
//!
//! Run: `cargo run --release --example certified_gap [n]` (default 7).

use tree_rendezvous::agent::Fsa;
use tree_rendezvous::lowerbounds::decide::{
    decide_pair, verify_lasso, worst_case_delay, WorstCase,
};
use tree_rendezvous::trees::enumerate::{free_tree_count, free_trees};
use tree_rendezvous::trees::{perfectly_symmetrizable, NodeId};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(7);
    assert!((2..=10).contains(&n), "keep the exhaustive demo small (2..=10)");
    println!("enumerating all {} free trees on {n} nodes (WROM order)\n", free_tree_count(n));

    let (mut pairs, mut met_zero, mut defeated, mut verified) = (0u64, 0u64, 0u64, 0u64);
    for (index, tree) in free_trees(n).enumerate() {
        let fsa = Fsa::basic_walk(tree.max_degree().max(1));
        let nodes = tree.num_nodes() as NodeId;
        let mut tree_defeats = 0u64;
        let mut worst_theta = 0u64;
        let mut tree_pairs = 0u64;
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b || perfectly_symmetrizable(&tree, a, b) {
                    continue;
                }
                pairs += 1;
                tree_pairs += 1;
                if decide_pair(&tree, &fsa, a, b, 0).met() {
                    met_zero += 1;
                }
                match worst_case_delay(&tree, &fsa, a, b) {
                    WorstCase::AllMeet { .. } => {}
                    WorstCase::Defeated { delay, decision, .. } => {
                        defeated += 1;
                        tree_defeats += 1;
                        worst_theta = worst_theta.max(delay);
                        let lasso = decision.lasso().expect("defeat carries a lasso");
                        assert!(
                            verify_lasso(&tree, &fsa, a, b, delay, lasso),
                            "certificate failed re-verification"
                        );
                        verified += 1;
                    }
                }
            }
        }
        println!(
            "tree {index:>3}: max degree {}, {tree_pairs:>3} feasible pairs, \
             {tree_defeats:>3} delay-defeated (worst θ* = {worst_theta})",
            tree.max_degree()
        );
    }
    println!(
        "\n{pairs} ordered feasible pairs over all trees: \
         {met_zero} meet at θ=0, {defeated} defeated by some delay \
         ({verified} lasso certificates re-verified)"
    );
    println!(
        "the delay gap, certified exhaustively: the 0-bit walk solves \
         {met_zero}/{pairs} simultaneous-start instances but 0/{pairs} \
         delay-adversarial ones"
    );
}
