//! The paper's headline, live: *delays induce an exponential memory gap*.
//!
//! ```text
//! cargo run --release --example exponential_gap
//! ```
//!
//! On lines (ℓ = 2), compares the memory an automaton must be provisioned
//! with in the two scenarios as `n` doubles:
//!
//! * delay 0 — the Theorem 4.1 agent: `O(log ℓ + log log n)` bits;
//! * arbitrary delay — `Θ(log n)` bits (Theorem 3.1 lower bound; our
//!   baseline matches it from above).
//!
//! Both agents are actually *run* on every size (with delay 0 and with an
//! adversarial delay respectively) to show they really do meet.
//!
//! Claim demonstrated: the **§1.1 title claim** — this is experiment e6's
//! scenario as a single runnable walkthrough.

use tree_rendezvous::core::{DelayRobustAgent, TreeRendezvousAgent};
use tree_rendezvous::sim::{run_pair, PairConfig};
use tree_rendezvous::trees::generators::line;

fn main() {
    println!(
        "{:>6} {:>14} {:>16} {:>10} {:>10}",
        "n", "delay-0 bits", "any-delay bits", "met@0", "met@n"
    );
    for exp in 4..=10 {
        let n: usize = 1 << exp;
        let tree = line(n);
        let (a, b) = (1u32, (n - 1) as u32);

        let mut x = TreeRendezvousAgent::new();
        let mut y = TreeRendezvousAgent::new();
        let met0 = run_pair(&tree, a, b, &mut x, &mut y, PairConfig::simultaneous(u64::MAX / 2))
            .outcome
            .met();

        let mut p = DelayRobustAgent::new();
        let mut q = DelayRobustAgent::new();
        let metd =
            run_pair(&tree, a, b, &mut p, &mut q, PairConfig::delayed(n as u64, u64::MAX / 2))
                .outcome
                .met();

        println!(
            "{:>6} {:>14} {:>16} {:>10} {:>10}",
            n,
            TreeRendezvousAgent::provisioned_bits(n as u64, 2),
            DelayRobustAgent::provisioned_bits(n as u64),
            met0,
            metd
        );
    }
    println!();
    println!("The delay-0 column is governed by log ℓ + log log n: it barely moves.");
    println!("The any-delay column is governed by log n: it climbs with every doubling —");
    println!("and Theorem 3.1 (see `experiments e1`) proves no algorithm can do better.");
}
