//! Feasibility analysis: when can two agents meet at all?
//!
//! ```text
//! cargo run --release --example symmetry_analysis
//! ```
//!
//! Walks through the paper's Definition 1.2 / Fact 1.1 on the classical
//! examples: odd and even lines, complete binary trees — including an
//! explicit *symmetrization witness* (a port labeling plus the
//! port-preserving involution) for a perfectly symmetrizable pair.
//!
//! Claim demonstrated: **Definition 1.2 / Fact 1.1** — the feasibility
//! predicate every sweep grid's start-pair pool is filtered by (and the
//! symmetry the decide executor's orbit quotient exploits).

use tree_rendezvous::trees::generators::{complete_binary, line};
use tree_rendezvous::trees::symmetry::{
    perfectly_symmetrizable, symmetrization_witness, topologically_symmetric,
};

fn main() {
    // Odd line: the two leaves are topologically symmetric, yet NOT
    // perfectly symmetrizable (the central node blocks every labeling).
    let odd = line(7);
    println!("line(7):  leaves (0, 6)");
    println!("  topologically symmetric:  {}", topologically_symmetric(&odd, 0, 6));
    println!("  perfectly symmetrizable:  {}", perfectly_symmetrizable(&odd, 0, 6));
    println!("  ⇒ rendezvous is FEASIBLE for every port labeling (Fact 1.1)");
    println!();

    // Even line: mirror pairs ARE perfectly symmetrizable.
    let even = line(8);
    println!("line(8):  leaves (0, 7)");
    println!("  perfectly symmetrizable:  {}", perfectly_symmetrizable(&even, 0, 7));
    let (relabeled, f) = symmetrization_witness(&even, 0, 7).expect("witness exists");
    println!("  witness: a labeling of the line plus the involution");
    println!("           f = {:?}", f);
    println!("           (f preserves relabeled ports: the adversary labeling");
    println!("            under which NO deterministic identical agents can meet)");
    let _ = relabeled;
    println!(
        "  non-mirror pair (0, 5): perfectly symmetrizable = {}",
        perfectly_symmetrizable(&even, 0, 5)
    );
    println!();

    // Complete binary tree: all leaves topologically symmetric, none
    // perfectly symmetrizable (central node again).
    let cb = complete_binary(3);
    let leaves = cb.leaves();
    println!(
        "complete_binary(3): {} nodes, leaves {:?}…",
        cb.num_nodes(),
        &leaves[..3.min(leaves.len())]
    );
    println!(
        "  leaves ({}, {}): topologically symmetric = {}, perfectly symmetrizable = {}",
        leaves[0],
        leaves[1],
        topologically_symmetric(&cb, leaves[0], leaves[1]),
        perfectly_symmetrizable(&cb, leaves[0], leaves[1])
    );
    println!("  ⇒ the paper's §1 examples, reproduced by the decision procedure");
}
