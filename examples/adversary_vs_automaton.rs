//! The constructive lower bounds in action: compile a *bounded-memory*
//! version of the paper's own `prime` protocol into an explicit automaton
//! and let the Theorem 3.1 and Theorem 4.2 adversaries defeat it.
//!
//! Claims demonstrated: **Theorems 3.1 and 4.2** (the lower-bound
//! adversaries), constructively — experiments e1 and e4 run the same
//! adversaries over parameter grids.
//!
//! ```text
//! cargo run --release --example adversary_vs_automaton
//! ```

use tree_rendezvous::agent::compile::compile_line_agent;
use tree_rendezvous::agent::line_fsa::LineFsa;
use tree_rendezvous::core::prime_path::PrimePathAgent;
use tree_rendezvous::lowerbounds::{delay_attack, sync_attack};

fn main() {
    // The cycling prime agent: the Lemma 4.1 protocol with its prime
    // counter capped (wraps back to p = 2) — a legitimate finite-state
    // agent, exactly what "bounded memory" means.
    for cap in 1..=3u32 {
        let compiled = compile_line_agent(|| PrimePathAgent::cycling(cap), 1_000_000)
            .expect("capped prime agent is finite-state");
        println!(
            "prime-cycle({cap}): compiled to {} states ({} bits)",
            compiled.num_states(),
            compiled.memory_bits()
        );

        let atk = delay_attack::delay_attack(&compiled).expect("Theorem 3.1 wins");
        println!(
            "  Thm 3.1 ⇒ defeated on a {}-edge line with start delay θ = {} \
             (verified {} rounds, no meeting)",
            atk.line_edges(),
            atk.theta,
            atk.verified_rounds
        );

        match sync_attack::sync_attack(&compiled, 1 << 22) {
            Ok(atk) => println!(
                "  Thm 4.2 ⇒ defeated on a {}-edge line with delay ZERO \
                 (γ = {}, verified {} rounds, {} edge-crossings, no meeting)",
                atk.line_edges(),
                atk.gamma,
                atk.verified_rounds,
                atk.crossings
            ),
            Err(e) => println!("  Thm 4.2 ⇒ skipped ({e:?})"),
        }
    }

    // And a plain random automaton, for contrast.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let fsa = LineFsa::random(16, 0.25, &mut rng);
    let atk = delay_attack::delay_attack(&fsa).expect("Theorem 3.1 wins");
    println!(
        "random 16-state automaton: defeated on a {}-edge line with θ = {}",
        atk.line_edges(),
        atk.theta
    );
    println!();
    println!("Takeaway: cap ANY agent's memory at k bits and the delay adversary");
    println!("builds a line of length O(2^k) it cannot handle — Ω(log n) is real.");
}
