//! Gathering — the k-agent extension (§1.3 of the paper).
//!
//! ```text
//! cargo run --release -p tree-rendezvous --example gathering
//! ```
//!
//! On trees whose contraction has a central node or an asymmetric central
//! edge, the Theorem 4.1 agent gathers *any* number of copies for free:
//! every copy converges to the same canonical waiting node. On symmetric
//! contractions only pairwise rendezvous is guaranteed — the example shows
//! both regimes and exports the gatherable instance as Graphviz DOT.
//!
//! Claim demonstrated: the **§1.3 gathering extension** on the multi-agent
//! simulator (`rvz_sim::run_ensemble`) — no sweep grid runs it; this example
//! is its executable record.

use tree_rendezvous::core::{gather, gatherable};
use tree_rendezvous::sim::Outcome;
use tree_rendezvous::trees::dot::to_dot;
use tree_rendezvous::trees::generators::{line, spider};

fn main() {
    // Regime 1: a spider — contraction is a star, central node = hub.
    let t = spider(4, 3);
    println!(
        "spider(4,3): n = {}, ℓ = {}, gatherable = {}",
        t.num_nodes(),
        t.num_leaves(),
        gatherable(&t)
    );
    let starts = [1u32, 4, 7, 10, 12];
    match gather(&t, &starts, 1_000_000).outcome {
        Outcome::Met { round, node } => {
            println!("  {} agents gathered at node {node} in round {round}", starts.len());
        }
        Outcome::Timeout { .. } => unreachable!("gatherable tree"),
    }

    // Regime 2: a path — contraction is a single symmetric edge: only
    // pairwise rendezvous is guaranteed.
    let p = line(9);
    println!("line(9): gatherable = {} (symmetric contraction)", gatherable(&p));
    match gather(&p, &[0, 4], 50_000_000).outcome {
        Outcome::Met { round, node } => {
            println!("  …but k = 2 still meets (Thm 4.1): node {node}, round {round}");
        }
        Outcome::Timeout { .. } => unreachable!("feasible pair"),
    }

    // Inspect the instance: render to DOT (pipe into `dot -Tsvg`).
    let marks: Vec<(u32, &str)> = starts.iter().map(|&s| (s, "lightblue")).collect();
    println!("\n--- spider(4,3) in DOT, agent starts highlighted ---");
    println!("{}", to_dot(&t, &marks));
}
