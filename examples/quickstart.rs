//! Quickstart: two identical agents rendezvous in an anonymous tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small tree, drops two copies of the Theorem 4.1 agent on
//! non-perfectly-symmetrizable starts, runs the synchronous simulator, and
//! reports where/when they met and how much memory they used.
//!
//! Claim demonstrated: **Theorem 4.1** (simultaneous-start rendezvous with
//! `O(log ℓ + log log n)` bits). The sweep's `tree-rvz` variant cells run
//! this same scenario at grid scale (experiment e2).

use tree_rendezvous::core::TreeRendezvousAgent;
use tree_rendezvous::sim::{run_pair, PairConfig};
use tree_rendezvous::trees::generators::{random_relabel, spider};
use tree_rendezvous::trees::perfectly_symmetrizable;

fn main() {
    // A 3-leg spider with 5-edge legs: 16 nodes, 3 leaves — the "few
    // leaves, many nodes" regime where the paper's algorithm shines.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let tree = random_relabel(&spider(3, 5), &mut rng);
    println!("tree: n = {}, ℓ = {} leaves", tree.num_nodes(), tree.num_leaves());

    // Agents start on two leg-interior nodes. The adversary picked the port
    // labeling above; we must only ensure the starts are feasible
    // (Fact 1.1: not perfectly symmetrizable).
    let (a, b) = (3, 14);
    assert!(!perfectly_symmetrizable(&tree, a, b), "feasible starting positions");

    let mut agent_a = TreeRendezvousAgent::new();
    let mut agent_b = TreeRendezvousAgent::new();
    let run =
        run_pair(&tree, a, b, &mut agent_a, &mut agent_b, PairConfig::simultaneous(10_000_000));

    match run.outcome {
        tree_rendezvous::sim::Outcome::Met { round, node } => {
            println!("met at node {node} in round {round}");
        }
        tree_rendezvous::sim::Outcome::Timeout { rounds } => {
            unreachable!("feasible instances always meet (ran {rounds} rounds)");
        }
    }
    println!(
        "memory: {} bits charged (Fact 2.1 contract for Explo), {} bits measured",
        agent_a.memory_bits_charged(),
        agent_a.memory_bits_measured(),
    );
    println!(
        "provisioned automaton size for all trees of this (n, ℓ): {} bits",
        TreeRendezvousAgent::provisioned_bits(tree.num_nodes() as u64, tree.num_leaves() as u64)
    );
}
