//! # tree-rendezvous
//!
//! Facade crate for the reproduction of Fraigniaud & Pelc, *Delays induce an
//! exponential memory gap for rendezvous in trees* (SPAA 2010).
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use tree_rendezvous::…`:
//!
//! * [`trees`] — anonymous port-labeled trees, generators, symmetry analysis;
//! * [`agent`] — the mobile-agent automaton model and memory accounting;
//! * [`sim`] — the synchronous two-agent simulator with start delays;
//! * [`explore`] — basic walks, `Explo`/`Explo-bis` (Fact 2.1), `Synchro`;
//! * [`core`] — the rendezvous algorithms (Theorem 4.1 agent, the `prime`
//!   path protocol of Lemma 4.1, the arbitrary-delay baseline);
//! * [`lowerbounds`] — the constructive adversaries of Theorems 3.1, 4.2
//!   and 4.3.
//!
//! See `README.md` for the workspace layout, the `experiments` CLI, and
//! the JSON result-row schema. (`DESIGN.md` section numbers cited in doc
//! comments refer to the original design notes, not yet committed here.)

pub use rvz_agent as agent;
pub use rvz_core as core;
pub use rvz_explore as explore;
pub use rvz_lowerbounds as lowerbounds;
pub use rvz_sim as sim;
pub use rvz_trees as trees;
