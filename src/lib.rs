//! # tree-rendezvous
//!
//! Facade crate for the reproduction of Fraigniaud & Pelc, *Delays induce an
//! exponential memory gap for rendezvous in trees* (SPAA 2010).
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use tree_rendezvous::…`:
//!
//! * [`trees`] — anonymous port-labeled trees, generators, symmetry analysis;
//! * [`agent`] — the mobile-agent automaton model and memory accounting;
//! * [`sim`] — the synchronous two-agent simulator with start delays;
//! * [`explore`] — basic walks, `Explo`/`Explo-bis` (Fact 2.1), `Synchro`;
//! * [`core`] — the rendezvous algorithms (Theorem 4.1 agent, the `prime`
//!   path protocol of Lemma 4.1, the arbitrary-delay baseline);
//! * [`lowerbounds`] — the constructive adversaries of Theorems 3.1, 4.2
//!   and 4.3.
//!
//! See `README.md` for the quickstart and the `docs/` directory for the
//! deep guides: `docs/architecture.md` (crate map and data flow),
//! `docs/executors.md` (the three sweep executors), `docs/certificates.md`
//! (the lasso certificate formats), `docs/schemas.md` (JSON schemas), and
//! `docs/design-notes.md` (the §D design notes cited in doc comments).
//!
//! ```
//! use tree_rendezvous::core::TreeRendezvousAgent;
//! use tree_rendezvous::sim::{run_pair, Outcome, PairConfig};
//! use tree_rendezvous::trees::generators::spider;
//! use tree_rendezvous::trees::perfectly_symmetrizable;
//!
//! // The whole stack in five lines: a feasible pair on a few-leaf tree,
//! // two copies of the Theorem 4.1 agent, simultaneous start — they meet.
//! let t = spider(3, 5);
//! assert!(!perfectly_symmetrizable(&t, 3, 14));
//! let (mut a, mut b) = (TreeRendezvousAgent::new(), TreeRendezvousAgent::new());
//! let run = run_pair(&t, 3, 14, &mut a, &mut b, PairConfig::simultaneous(10_000_000));
//! assert!(matches!(run.outcome, Outcome::Met { .. }));
//! ```

pub use rvz_agent as agent;
pub use rvz_core as core;
pub use rvz_explore as explore;
pub use rvz_lowerbounds as lowerbounds;
pub use rvz_sim as sim;
pub use rvz_trees as trees;
