//! Workspace-root `experiments` binary, so
//! `cargo run --release --bin experiments -- ...` works from a fresh
//! checkout. All logic lives in [`rvz_bench::cli`].

fn main() {
    rvz_bench::cli::run_from_env();
}
